package telemetry

import (
	"context"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// ByteReporter is implemented by stores that can report real I/O bytes
// consumed so far (seqdb.DiskDB, seqdb.GzipDB). Stores without it get a
// 4-bytes-per-symbol estimate (the in-memory size of pattern.Symbol).
//
// A store may additionally implement ReportsBytes() bool to disclaim its
// counter at runtime (seqdb.Sharded over memory-backed shards always returns
// 0 real bytes); when it returns false the estimate path is used instead.
type ByteReporter interface {
	BytesRead() int64
}

// Scanner instruments an inner seqdb.Scanner: every delivered sequence and
// every completed pass is recorded into the Metrics under the pipeline phase
// current at delivery time. It forwards the pass-protocol and stats
// capabilities of the wrapped scanner (ContextScanner, PassScanner,
// StatsReporter), so retry semantics and scan accounting are unchanged —
// including that a retried attempt's re-delivered sequences are counted
// (telemetry reports traffic actually generated, not logical passes).
type Scanner struct {
	inner seqdb.Scanner
	m     *Metrics
}

// NewScanner wraps inner; a nil m yields a transparent wrapper.
func NewScanner(inner seqdb.Scanner, m *Metrics) *Scanner {
	return &Scanner{inner: inner, m: m}
}

// Unwrap returns the wrapped scanner.
func (s *Scanner) Unwrap() seqdb.Scanner { return s.inner }

// Len implements seqdb.Scanner.
func (s *Scanner) Len() int { return s.inner.Len() }

// Scans implements seqdb.Scanner.
func (s *Scanner) Scans() int { return s.inner.Scans() }

// ResetScans implements seqdb.Scanner.
func (s *Scanner) ResetScans() { s.inner.ResetScans() }

// ScanStats implements seqdb.StatsReporter, forwarding the inner scanner's
// counters (zero when the inner scanner does not track them).
func (s *Scanner) ScanStats() seqdb.ScanStats {
	if sr, ok := s.inner.(seqdb.StatsReporter); ok {
		return sr.ScanStats()
	}
	return seqdb.ScanStats{}
}

// passMeter snapshots byte/symbol progress so one pass's I/O can be
// attributed at its end.
type passMeter struct {
	br         ByteReporter
	startBytes int64
	symbols    int64
}

func (s *Scanner) newPassMeter() *passMeter {
	pm := &passMeter{}
	if br, ok := s.inner.(ByteReporter); ok {
		if dis, ok := s.inner.(interface{ ReportsBytes() bool }); !ok || dis.ReportsBytes() {
			pm.br = br
			pm.startBytes = br.BytesRead()
		}
	}
	return pm
}

// done records a completed pass: real bytes when the store reports them,
// otherwise 4 bytes per delivered symbol.
func (pm *passMeter) done(m *Metrics) {
	if pm.br != nil {
		m.ScanDone(pm.br.BytesRead()-pm.startBytes, false)
		return
	}
	m.ScanDone(4*pm.symbols, true)
}

// count wraps fn with sequence accounting.
func (s *Scanner) count(pm *passMeter, fn func(id int, seq []pattern.Symbol) error) func(id int, seq []pattern.Symbol) error {
	return func(id int, seq []pattern.Symbol) error {
		s.m.Sequence(len(seq))
		pm.symbols += int64(len(seq))
		return fn(id, seq)
	}
}

// Scan implements seqdb.Scanner.
func (s *Scanner) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}

// ScanContext implements seqdb.ContextScanner.
func (s *Scanner) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	pm := s.newPassMeter()
	err := seqdb.ScanContext(ctx, s.inner, s.count(pm, fn))
	if err == nil {
		pm.done(s.m)
	}
	return err
}

// ScanPassContext implements seqdb.PassScanner: the setup is re-invoked per
// attempt by a retrying inner scanner, with counting wrapped around each
// attempt's callback.
func (s *Scanner) ScanPassContext(ctx context.Context, setup seqdb.PassFunc) error {
	pm := s.newPassMeter()
	err := seqdb.ScanPassContext(ctx, s.inner, func() (func(id int, seq []pattern.Symbol) error, error) {
		fn, err := setup()
		if err != nil {
			return nil, err
		}
		return s.count(pm, fn), nil
	})
	if err == nil {
		pm.done(s.m)
	}
	return err
}
