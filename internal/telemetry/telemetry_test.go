package telemetry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

func TestNilMetricsIsSafe(t *testing.T) {
	var m *Metrics
	m.SetPhase(1)
	m.Sequence(10)
	m.ScanDone(100, true)
	m.PhaseTime(1, time.Second)
	m.SampleDrawn(5)
	m.LevelEvaluated(7)
	m.Classified(LabelFrequent)
	m.ProbeScan(3)
	m.ProbeLayer(4)
	if m.Phase() != 0 {
		t.Errorf("nil Phase() = %d", m.Phase())
	}
	s := m.Snapshot()
	if s.TotalSequences != 0 || s.TotalScans != 0 {
		t.Errorf("nil snapshot not zero: %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Max != 100 {
		t.Errorf("max = %d", s.Max)
	}
	if s.Sum != 111 { // -5 clamps to 0
		t.Errorf("sum = %d", s.Sum)
	}
	// 0 and -5 land in le_0; the two 1s in le_1; 2 and 3 in le_3; 4 in le_7;
	// 100 in le_127.
	want := map[string]int64{"le_0": 2, "le_1": 2, "le_3": 2, "le_7": 1, "le_127": 1}
	for k, n := range want {
		if s.Buckets[k] != n {
			t.Errorf("bucket %s = %d, want %d (all: %v)", k, s.Buckets[k], n, s.Buckets)
		}
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Load() != 5 {
		t.Errorf("gauge = %d", g.Load())
	}
	g.SetMax(9)
	if g.Load() != 9 {
		t.Errorf("gauge = %d", g.Load())
	}
}

func testDB(n, l int) *seqdb.MemDB {
	db := seqdb.NewMemDB(nil)
	for i := 0; i < n; i++ {
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(j % 3)
		}
		db.Append(seq)
	}
	return db
}

func TestScannerAttributesTrafficToPhases(t *testing.T) {
	m := &Metrics{}
	db := NewScanner(testDB(10, 7), m)

	m.SetPhase(1)
	if err := db.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
		t.Fatal(err)
	}
	m.SetPhase(3)
	for i := 0; i < 2; i++ {
		if err := db.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	m.PhaseTime(1, 50*time.Millisecond)

	s := m.Snapshot()
	p1, p3 := s.Phases[0], s.Phases[2]
	if p1.Sequences != 10 || p1.Symbols != 70 || p1.Scans != 1 {
		t.Errorf("phase1 = %+v", p1)
	}
	if p1.Bytes != 4*70 || !s.BytesEstimated {
		t.Errorf("phase1 bytes = %d (estimated=%v)", p1.Bytes, s.BytesEstimated)
	}
	if p3.Sequences != 20 || p3.Scans != 2 {
		t.Errorf("phase3 = %+v", p3)
	}
	if s.TotalScans != 3 || s.TotalSequences != 30 {
		t.Errorf("totals = %d scans, %d sequences", s.TotalScans, s.TotalSequences)
	}
	if p1.SequencesPerSec == 0 {
		t.Error("phase1 seq/s not derived from PhaseTime")
	}
	if db.Scans() != 3 {
		t.Errorf("inner scans = %d", db.Scans())
	}
}

func TestScannerReportsRealDiskBytes(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.lsq"
	if err := seqdb.WriteFile(path, testDB(5, 9)); err != nil {
		t.Fatal(err)
	}
	disk, err := seqdb.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	db := NewScanner(disk, m)
	m.SetPhase(1)
	if err := db.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.BytesEstimated {
		t.Error("disk bytes should not be estimated")
	}
	if s.Phases[0].Bytes == 0 {
		t.Error("no bytes recorded for disk scan")
	}
}

// flaky fails its first pass attempt with a transient-looking error.
type flaky struct {
	*seqdb.MemDB
	failed bool
}

var errFlaky = errors.New("flaky: transient")

func (f *flaky) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return f.ScanContext(nil, fn)
}

// ScanContext must be overridden too: seqdb.ScanContext dispatches through
// the ContextScanner interface, which the embedded MemDB would satisfy.
func (f *flaky) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	if !f.failed {
		f.failed = true
		// Deliver one sequence, then die mid-pass.
		first := true
		return f.MemDB.ScanContext(ctx, func(id int, seq []pattern.Symbol) error {
			if !first {
				return errFlaky
			}
			first = false
			return fn(id, seq)
		})
	}
	return f.MemDB.ScanContext(ctx, fn)
}

func TestScannerForwardsPassProtocolAndStats(t *testing.T) {
	inner := &flaky{MemDB: testDB(4, 3)}
	retry := &seqdb.RetryScanner{
		Inner:    inner,
		Sleep:    func(time.Duration) {},
		Classify: func(error) bool { return true },
	}
	m := &Metrics{}
	db := NewScanner(retry, m)
	m.SetPhase(1)

	setups := 0
	delivered := 0
	err := seqdb.ScanPassContext(nil, db, func() (func(id int, seq []pattern.Symbol) error, error) {
		setups++
		delivered = 0
		return func(int, []pattern.Symbol) error { delivered++; return nil }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if setups != 2 {
		t.Errorf("setup invoked %d times, want 2 (retry must rebuild state through the wrapper)", setups)
	}
	if delivered != 4 {
		t.Errorf("final attempt delivered %d", delivered)
	}
	s := m.Snapshot()
	// 1 sequence from the failed attempt + 4 from the good one.
	if s.Phases[0].Sequences != 5 {
		t.Errorf("sequences = %d, want 5 (failed attempt traffic counts)", s.Phases[0].Sequences)
	}
	if s.Phases[0].Scans != 1 {
		t.Errorf("scans = %d, want 1 (only completed passes)", s.Phases[0].Scans)
	}
	st := db.ScanStats()
	if st.Attempts != 2 || st.Retries != 1 {
		t.Errorf("stats not forwarded: %+v", st)
	}
}

func TestSnapshotConcurrentWithRecording(t *testing.T) {
	m := &Metrics{}
	m.SetPhase(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Sequence(10)
				m.Classified(i % 3)
				m.ProbeScan(1 + i%50)
				m.ProbeLayer(i % 8)
				m.LevelEvaluated(i % 100)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		_ = m.Snapshot()
		m.SetPhase(1 + i%3)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.TotalSequences == 0 || s.Probed == 0 {
		t.Errorf("no traffic recorded: %+v", s)
	}
}

func TestSnapshotRendering(t *testing.T) {
	m := &Metrics{}
	m.SetPhase(1)
	m.Sequence(5)
	m.ScanDone(20, true)
	m.PhaseTime(1, time.Millisecond)
	m.SampleDrawn(1)
	m.LevelEvaluated(3)
	m.Classified(LabelAmbiguous)
	m.SetPhase(3)
	m.ProbeScan(3)
	m.ProbeLayer(2)
	s := m.Snapshot()

	var jsonBuf, textBuf strings.Builder
	if err := s.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total_scans": 1`, `"probe_scans": 1`, `"sequences_per_sec"`} {
		if !strings.Contains(jsonBuf.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, jsonBuf.String())
		}
	}
	if err := s.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(textBuf.String(), "telemetry:") {
		t.Errorf("text rendering: %s", textBuf.String())
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
