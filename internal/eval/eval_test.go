package eval

import (
	"math"
	"testing"

	"repro/internal/pattern"
)

func pat(syms ...pattern.Symbol) pattern.Pattern { return pattern.MustNew(syms...) }

func TestAccuracyCompleteness(t *testing.T) {
	want := pattern.NewSet(pat(0), pat(1), pat(2), pat(3))
	got := pattern.NewSet(pat(0), pat(1), pat(9))
	if a := Accuracy(got, want); math.Abs(a-2.0/3.0) > 1e-12 {
		t.Errorf("Accuracy=%v", a)
	}
	if c := Completeness(got, want); c != 0.5 {
		t.Errorf("Completeness=%v", c)
	}
	q := Compare(got, want)
	if q.Accuracy != Accuracy(got, want) || q.Completeness != Completeness(got, want) {
		t.Error("Compare disagrees with individual metrics")
	}
}

func TestVacuousCases(t *testing.T) {
	empty := pattern.NewSet()
	some := pattern.NewSet(pat(0))
	if Accuracy(empty, some) != 1 {
		t.Error("empty result should be vacuously accurate")
	}
	if Completeness(some, empty) != 1 {
		t.Error("empty reference should be vacuously complete")
	}
	if Accuracy(some, empty) != 0 {
		t.Error("non-empty result against empty reference has accuracy 0")
	}
	if Completeness(empty, some) != 0 {
		t.Error("empty result against non-empty reference has completeness 0")
	}
}

func TestPerfectAgreement(t *testing.T) {
	s := pattern.NewSet(pat(0), pat(0, 1))
	q := Compare(s, s.Clone())
	if q.Accuracy != 1 || q.Completeness != 1 {
		t.Errorf("perfect agreement: %+v", q)
	}
	if ErrorRate(s, s.Clone()) != 0 {
		t.Error("perfect agreement should have zero error rate")
	}
}

func TestMissedAndSpurious(t *testing.T) {
	want := pattern.NewSet(pat(0), pat(1))
	got := pattern.NewSet(pat(1), pat(2))
	missed := Missed(got, want)
	if missed.Len() != 1 || !missed.Contains(pat(0)) {
		t.Errorf("Missed=%v", missed.Patterns())
	}
	spurious := Spurious(got, want)
	if spurious.Len() != 1 || !spurious.Contains(pat(2)) {
		t.Errorf("Spurious=%v", spurious.Patterns())
	}
	if got := ErrorRate(got, want); got != 1 {
		t.Errorf("ErrorRate=%v, want 1 (2 mislabeled / 2 frequent)", got)
	}
}

func TestErrorRateEmptyReference(t *testing.T) {
	if ErrorRate(pattern.NewSet(), pattern.NewSet()) != 0 {
		t.Error("all-empty error rate should be 0")
	}
	if ErrorRate(pattern.NewSet(pat(0)), pattern.NewSet()) != 1 {
		t.Error("one false positive against empty reference")
	}
}

func TestMissDistances(t *testing.T) {
	missed := pattern.NewSet(pat(0), pat(1), pat(2))
	matches := map[string]float64{
		pat(0).Key(): 0.11, // 10% above threshold 0.1
		pat(1).Key(): 0.1,  // exactly at threshold
		// pat(2) has no recorded match and is skipped
	}
	ds := MissDistances(missed, matches, 0.1)
	if len(ds) != 2 {
		t.Fatalf("got %d distances", len(ds))
	}
	// Patterns() is key-sorted: "0" then "1".
	if math.Abs(ds[0]-0.1) > 1e-9 || ds[1] != 0 {
		t.Errorf("distances=%v", ds)
	}
}
