// Package eval implements the result-quality metrics of the paper's
// evaluation: accuracy and completeness of a mined pattern set against a
// reference set (§5.1), the error rate of the probabilistic algorithm
// (§5.5), and the distance distribution of mislabeled patterns (Figure 13).
package eval

import (
	"repro/internal/pattern"
)

// Accuracy is |got ∩ want| / |got| — how selective the result is (§5.1). An
// empty result is vacuously accurate (1).
func Accuracy(got, want *pattern.Set) float64 {
	if got.Len() == 0 {
		return 1
	}
	return float64(got.Intersect(want).Len()) / float64(got.Len())
}

// Completeness is |got ∩ want| / |want| — how much of the expected result is
// covered (§5.1). An empty reference is vacuously complete (1).
func Completeness(got, want *pattern.Set) float64 {
	if want.Len() == 0 {
		return 1
	}
	return float64(got.Intersect(want).Len()) / float64(want.Len())
}

// Quality bundles both metrics.
type Quality struct {
	Accuracy     float64
	Completeness float64
}

// Compare computes both metrics at once.
func Compare(got, want *pattern.Set) Quality {
	return Quality{Accuracy: Accuracy(got, want), Completeness: Completeness(got, want)}
}

// Missed returns the patterns of want absent from got (the false negatives —
// the paper's "missing patterns" of Figure 13).
func Missed(got, want *pattern.Set) *pattern.Set {
	return want.Diff(got)
}

// Spurious returns the patterns of got absent from want (false positives).
func Spurious(got, want *pattern.Set) *pattern.Set {
	return got.Diff(want)
}

// ErrorRate is the §5.5 metric: mislabeled patterns (false negatives plus
// false positives) over the number of truly frequent patterns. Zero when the
// reference is empty and the result agrees.
func ErrorRate(got, want *pattern.Set) float64 {
	mislabeled := Missed(got, want).Len() + Spurious(got, want).Len()
	if want.Len() == 0 {
		if mislabeled == 0 {
			return 0
		}
		return float64(mislabeled)
	}
	return float64(mislabeled) / float64(want.Len())
}

// MissDistances returns, for every missed pattern, the relative distance of
// its real match above the threshold: (match - minMatch) / minMatch. The
// Figure 13 histogram buckets these distances. matches must be able to value
// every missed pattern (e.g. the exhaustive run's Values map).
func MissDistances(missed *pattern.Set, matches map[string]float64, minMatch float64) []float64 {
	out := make([]float64, 0, missed.Len())
	for _, p := range missed.Patterns() {
		v, ok := matches[p.Key()]
		if !ok {
			continue
		}
		out = append(out, (v-minMatch)/minMatch)
	}
	return out
}
