package faults

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Network fault injection for the distributed Phase 3 transport: a NetDoer
// wraps one endpoint's HTTP transport and fires its configured NetFaults at
// exact request ordinals — the network analogue of the (scan attempt,
// sequence) coordinates Scanner uses for disk faults. Drop, delay, and flap
// schedules are all expressible as ordinal windows, so "node 1 refuses
// requests 2 through 4 then heals" is one deterministic NetFault, and the
// coordinator's reassignment/retry/hedging behavior is provable in tests
// without sockets or timing luck.

// Doer mirrors the shard RPC transport interface structurally (the shardrpc
// client accepts any Doer), so this package injects network faults without
// importing the transport.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// NetKind selects a network fault's failure mode.
type NetKind int

const (
	// NetDrop fails the request with a transport-level error (connection
	// refused/reset), never reaching the wrapped transport.
	NetDrop NetKind = iota
	// NetDelay stalls the request before forwarding it, honoring the
	// request's context — a straggling node, visible to hedging and
	// per-attempt timeouts.
	NetDelay
)

// String names the kind for error messages.
func (k NetKind) String() string {
	switch k {
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}

// NetFault fires on a window of request ordinals: requests [Req, Req+Count)
// through this endpoint (1-based, counted across all callers). A finite
// window is a flap — the endpoint misbehaves and heals; Count -1 is a dead
// or permanently slow endpoint.
type NetFault struct {
	// Req is the 1-based request ordinal the fault starts at.
	Req int
	// Count is the window length (0 defaults to 1; -1 = every request from
	// Req on).
	Count int
	// Kind selects the failure mode.
	Kind NetKind
	// Delay is the stall for NetDelay faults.
	Delay time.Duration
	// Err overrides NetDrop's error (default: a connection-reset error).
	Err error
}

func (f NetFault) matches(n int) bool {
	count := f.Count
	if count == 0 {
		count = 1
	}
	return n >= f.Req && (count < 0 || n < f.Req+count)
}

// DropOn drops requests [req, req+count) of an endpoint.
func DropOn(req, count int) NetFault {
	return NetFault{Req: req, Count: count, Kind: NetDrop}
}

// DelayOn stalls requests [req, req+count) of an endpoint by d.
func DelayOn(req, count int, d time.Duration) NetFault {
	return NetFault{Req: req, Count: count, Kind: NetDelay, Delay: d}
}

// NetDoer wraps one endpoint's transport with a deterministic fault
// schedule. Safe for concurrent use; the ordinal counter is shared across
// callers, so concurrent scatter workers draw distinct ordinals.
type NetDoer struct {
	// Inner is the real transport.
	Inner Doer
	// Faults is the schedule; every matching fault fires (delays accumulate,
	// and a drop wins over forwarding).
	Faults []NetFault

	mu   sync.Mutex
	reqs int
}

// Requests returns the number of requests attempted through this endpoint.
func (d *NetDoer) Requests() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reqs
}

// Do applies the schedule to the next request ordinal, then forwards.
func (d *NetDoer) Do(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	d.reqs++
	n := d.reqs
	d.mu.Unlock()
	for _, f := range d.Faults {
		if !f.matches(n) {
			continue
		}
		switch f.Kind {
		case NetDelay:
			t := time.NewTimer(f.Delay)
			select {
			case <-req.Context().Done():
				t.Stop()
				return nil, req.Context().Err()
			case <-t.C:
			}
		default:
			if f.Err != nil {
				return nil, f.Err
			}
			return nil, fmt.Errorf("faults: request %d to %s: connection reset", n, req.URL.Host)
		}
	}
	return d.Inner.Do(req)
}
