package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

func testDB() *seqdb.MemDB {
	return seqdb.NewMemDB([][]pattern.Symbol{
		{0, 1, 2},
		{3, 1, 0},
		{2, 2},
	})
}

func scanOnce(s *Scanner) ([][]pattern.Symbol, error) {
	var got [][]pattern.Symbol
	err := s.Scan(func(id int, seq []pattern.Symbol) error {
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		got = append(got, cp)
		return nil
	})
	return got, err
}

func TestTransientFiresOnceAtExactCoordinates(t *testing.T) {
	s := New(testDB(), TransientOn(2, 1))

	// Attempt 1: clean.
	if _, err := scanOnce(s); err != nil {
		t.Fatalf("attempt 1: %v", err)
	}
	// Attempt 2: fails at sequence 1, marked transient.
	got, err := scanOnce(s)
	if err == nil {
		t.Fatal("attempt 2 did not fail")
	}
	if !seqdb.IsTransient(err) {
		t.Errorf("injected transient fault not classified transient: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("attempt 2 delivered %d sequences before failing, want 1", len(got))
	}
	// Attempt 3: healed.
	if _, err := scanOnce(s); err != nil {
		t.Fatalf("attempt 3 (healed): %v", err)
	}
	if s.Attempts() != 3 {
		t.Errorf("Attempts=%d", s.Attempts())
	}
	if s.Scans() != 2 {
		t.Errorf("Scans=%d, want 2 — the failed attempt must not count", s.Scans())
	}
}

func TestPermanentRepeatsForever(t *testing.T) {
	s := New(testDB(), PermanentOn(2, 0))
	if _, err := scanOnce(s); err != nil {
		t.Fatalf("attempt 1: %v", err)
	}
	for attempt := 2; attempt <= 4; attempt++ {
		_, err := scanOnce(s)
		if err == nil {
			t.Fatalf("attempt %d did not fail", attempt)
		}
		if seqdb.IsTransient(err) {
			t.Errorf("permanent fault classified transient: %v", err)
		}
	}
	if s.Scans() != 1 {
		t.Errorf("Scans=%d", s.Scans())
	}
}

func TestCorruptFlipsOneSymbol(t *testing.T) {
	s := New(testDB(), CorruptAt(1, 1, 2))
	got, err := scanOnce(s)
	if err != nil {
		t.Fatal(err)
	}
	if got[1][2] != 0^1 {
		t.Errorf("seq 1 = %v, want symbol 2 flipped to 1", got[1])
	}
	if got[1][0] != 3 || got[1][1] != 1 {
		t.Errorf("seq 1 = %v, other symbols disturbed", got[1])
	}
	for _, i := range []int{0, 2} {
		want := testDB().Seq(i)
		for j := range want {
			if got[i][j] != want[j] {
				t.Errorf("seq %d corrupted collaterally: %v", i, got[i])
			}
		}
	}
	// The wrapped database is untouched: corruption happens on a copy.
	if s.Inner.(*seqdb.MemDB).Seq(1)[2] != 0 {
		t.Error("fault mutated the underlying database")
	}
}

func TestCorruptPosClamps(t *testing.T) {
	s := New(testDB(), CorruptAt(1, 2, 99))
	got, err := scanOnce(s)
	if err != nil {
		t.Fatal(err)
	}
	if got[2][1] != 2^1 {
		t.Errorf("seq 2 = %v, want last symbol flipped", got[2])
	}
}

func TestCustomErrorOverride(t *testing.T) {
	boom := errors.New("custom boom")
	s := New(testDB(), Fault{Scan: 1, Seq: 0, Kind: Permanent, Err: boom})
	_, err := scanOnce(s)
	if !errors.Is(err, boom) {
		t.Errorf("err=%v, want the override", err)
	}
}

func TestRetryScannerHealsInjectedTransient(t *testing.T) {
	// The composition the pipeline uses: RetryScanner over a faulty store.
	inner := New(testDB(), TransientOn(1, 2))
	r := &seqdb.RetryScanner{Inner: inner, Sleep: func(time.Duration) {}}
	n := 0
	err := seqdb.ScanPass(r, func() (func(id int, seq []pattern.Symbol) error, error) {
		n = 0 // rebuilt per attempt
		return func(int, []pattern.Symbol) error { n++; return nil }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("healed pass saw %d sequences, want 3", n)
	}
	if inner.Attempts() != 2 || r.Scans() != 1 {
		t.Errorf("Attempts=%d Scans=%d, want 2 and 1", inner.Attempts(), r.Scans())
	}
}
