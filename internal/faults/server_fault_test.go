package faults_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compat"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/jobs"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/testutil"
)

// These are the serving layer's fault-injection tests: the job queue and
// HTTP API under the server-level fault model — queue-full storms, tenants
// at their limits, slow and failing scanners underneath running jobs,
// malformed requests, and a kill mid-job — asserting the admission and
// recovery contracts from the operator's side of the API.

// serverWorld writes a small noisy world to disk and returns the paths.
func serverWorld(t *testing.T, seed int64, n int) (dbPath, matrixPath string) {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(seed))
	const m = 6
	std, _, err := datagen.Protein(datagen.ProteinConfig{
		N: n, M: m, MinLen: 10, MaxLen: 14,
		Motifs:    []pattern.Pattern{pattern.MustNew(0, 1, 2)},
		PlantProb: 0.7,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := datagen.ApplyUniformNoise(std, m, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	dbPath = filepath.Join(dir, "world.lsq")
	if err := seqdb.WriteFile(dbPath, noisy); err != nil {
		t.Fatal(err)
	}
	c, err := compat.UniformNoise(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	matrixPath = filepath.Join(dir, "world.compat")
	f, err := os.Create(matrixPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return dbPath, matrixPath
}

func startServer(t *testing.T, opts jobs.Options) (*jobs.Manager, *httptest.Server) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	m, err := jobs.NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(jobs.NewServer(m).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m, srv
}

// submitBody renders a job spec as the POST /v1/jobs payload.
func submitBody(t *testing.T, dbPath, matrixPath, tenant string) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"tenant":    tenant,
		"db":        dbPath,
		"matrix":    matrixPath,
		"min_match": 0.30,
		"max_len":   6,
		"delta":     1e-2,
		"sample":    30,
		"seed":      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postJob(t *testing.T, srv *httptest.Server, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeAndClose parses a JSON response body into v.
func decodeAndClose(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s response: %v", resp.Request.URL, err)
	}
}

// waitState polls the status endpoint until the job reaches a terminal
// state, returning the final status document.
func waitState(t *testing.T, srv *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		decodeAndClose(t, resp, &st)
		switch st["state"] {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return nil
}

// slowOpener opens the spec's database behind a faults.Throttle, so jobs
// run long enough for admission pressure to build.
func slowOpener(perSeq time.Duration) func(jobs.Spec) (seqdb.Scanner, error) {
	return func(spec jobs.Spec) (seqdb.Scanner, error) {
		db, err := seqdb.OpenAuto(spec.DB)
		if err != nil {
			return nil, err
		}
		return &faults.Throttle{Inner: db, PerSeq: perSeq}, nil
	}
}

// TestServerQueueFullStorm floods a one-slot, two-deep server with
// submissions: the accepted set is exactly the capacity, every overflow is
// shed with 429 and a usable Retry-After, and the queue bound holds while
// the storm rages.
func TestServerQueueFullStorm(t *testing.T) {
	dbPath, matrixPath := serverWorld(t, testutil.Seed(t), 40)
	m, srv := startServer(t, jobs.Options{
		WorkerSlots:      1,
		MaxWorkersPerJob: 1,
		QueueCap:         2,
		OpenDB:           slowOpener(2 * time.Millisecond),
	})
	body := submitBody(t, dbPath, matrixPath, "")

	accepted, rejected := 0, 0
	for i := 0; i < 20; i++ {
		resp := postJob(t, srv, body)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
			resp.Body.Close()
		case http.StatusTooManyRequests:
			rejected++
			ra := resp.Header.Get("Retry-After")
			sec, err := strconv.Atoi(ra)
			if err != nil || sec < 1 {
				t.Fatalf("429 Retry-After = %q, want a positive integer", ra)
			}
			var e struct {
				Error  string `json:"error"`
				Reason string `json:"reason"`
			}
			decodeAndClose(t, resp, &e)
			if e.Reason != "queue-full" {
				t.Fatalf("429 reason = %q, want queue-full", e.Reason)
			}
		default:
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
	}
	// One job can be running plus QueueCap queued: at most 3 in the system.
	if accepted > 3 {
		t.Errorf("accepted %d jobs through a 1-slot, 2-deep server", accepted)
	}
	if rejected == 0 {
		t.Error("storm produced no 429s")
	}
	if c := m.Counters(); c.RejectedQueueFull != int64(rejected) {
		t.Errorf("counters.RejectedQueueFull = %d, want %d", c.RejectedQueueFull, rejected)
	}
}

// TestServerTenantRateLimitIsolation pins tenant A at its rate limit and
// verifies the two halves of the isolation contract: A's overflow is shed
// with 429 reason rate-limited, and tenant B's submissions are admitted and
// complete while A's storm is in progress — A's limit never delays B beyond
// the shared worker-slot bound.
func TestServerTenantRateLimitIsolation(t *testing.T) {
	dbPath, matrixPath := serverWorld(t, testutil.Seed(t), 40)
	m, srv := startServer(t, jobs.Options{
		WorkerSlots: 2,
		TenantRate:  0.001, // effectively: burst only
		TenantBurst: 1,
	})

	// Tenant A spends its burst, then keeps hammering.
	resp := postJob(t, srv, submitBody(t, dbPath, matrixPath, "tenant-a"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant A's first submission: status %d", resp.StatusCode)
	}
	var aFirst struct {
		ID string `json:"id"`
	}
	decodeAndClose(t, resp, &aFirst)
	for i := 0; i < 5; i++ {
		resp := postJob(t, srv, submitBody(t, dbPath, matrixPath, "tenant-a"))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("tenant A over limit: status %d, want 429", resp.StatusCode)
		}
		var e struct {
			Reason string `json:"reason"`
		}
		decodeAndClose(t, resp, &e)
		if e.Reason != "rate-limited" {
			t.Fatalf("reason = %q, want rate-limited", e.Reason)
		}
	}

	// Tenant B, mid-storm, is admitted and runs to completion.
	resp = postJob(t, srv, submitBody(t, dbPath, matrixPath, "tenant-b"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant B's submission during A's storm: status %d", resp.StatusCode)
	}
	var b struct {
		ID string `json:"id"`
	}
	decodeAndClose(t, resp, &b)
	if st := waitState(t, srv, b.ID); st["state"] != "done" {
		t.Fatalf("tenant B's job: state %v (%v)", st["state"], st["error"])
	}
	if st := waitState(t, srv, aFirst.ID); st["state"] != "done" {
		t.Fatalf("tenant A's admitted job: state %v (%v)", st["state"], st["error"])
	}
	if c := m.Counters(); c.RejectedRateLimited < 5 {
		t.Errorf("counters.RejectedRateLimited = %d, want >= 5", c.RejectedRateLimited)
	}
}

// TestServerTenantMaxActiveIsolation caps each tenant at one active job: the
// tenant's second concurrent submission is shed with reason tenant-busy
// while another tenant's submission sails through.
func TestServerTenantMaxActiveIsolation(t *testing.T) {
	dbPath, matrixPath := serverWorld(t, testutil.Seed(t), 40)
	_, srv := startServer(t, jobs.Options{
		WorkerSlots:     2,
		TenantMaxActive: 1,
		OpenDB:          slowOpener(time.Millisecond),
	})
	resp := postJob(t, srv, submitBody(t, dbPath, matrixPath, "tenant-a"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant A's first submission: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJob(t, srv, submitBody(t, dbPath, matrixPath, "tenant-a"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant A's second active job: status %d, want 429", resp.StatusCode)
	}
	var e struct {
		Reason string `json:"reason"`
	}
	decodeAndClose(t, resp, &e)
	if e.Reason != "tenant-busy" {
		t.Fatalf("reason = %q, want tenant-busy", e.Reason)
	}

	resp = postJob(t, srv, submitBody(t, dbPath, matrixPath, "tenant-b"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant B blocked by A's cap: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServerMalformedRequests: broken JSON, unknown fields, and invalid
// values are all 400s with a JSON error body; lookups of unknown jobs 404.
func TestServerMalformedRequests(t *testing.T) {
	_, srv := startServer(t, jobs.Options{})
	for _, tc := range []struct {
		name string
		body string
	}{
		{"truncated JSON", `{"db": "x", "matrix`},
		{"unknown field", `{"db": "x", "matrix": "y", "min_match": 0.5, "max_len": 3, "min_mach": 0.9}`},
		{"missing db", `{"matrix": "y", "min_match": 0.5, "max_len": 3}`},
		{"bad min_match", `{"db": "x", "matrix": "y", "min_match": 7, "max_len": 3}`},
		{"bad engine", `{"db": "x", "matrix": "y", "min_match": 0.5, "max_len": 3, "engine": "warp"}`},
		{"wrong type", `{"db": "x", "matrix": "y", "min_match": "high", "max_len": 3}`},
	} {
		resp := postJob(t, srv, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		decodeAndClose(t, resp, &e)
		if e.Error == "" {
			t.Errorf("%s: no error detail in body", tc.name)
		}
	}

	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/nope"},
		{http.MethodGet, "/v1/jobs/nope/result"},
		{http.MethodGet, "/v1/jobs/nope/events"},
		{http.MethodDelete, "/v1/jobs/nope"},
	} {
		r, err := http.NewRequest(req.method, srv.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

// TestServerTransientScannerFaultsUnderRunningJob injects transient scan
// failures beneath a running job; the jittered retrying scanner heals them
// and the job completes, with the retries visible in its telemetry.
func TestServerTransientScannerFaultsUnderRunningJob(t *testing.T) {
	dbPath, matrixPath := serverWorld(t, testutil.Seed(t), 40)
	_, srv := startServer(t, jobs.Options{
		OpenDB: func(spec jobs.Spec) (seqdb.Scanner, error) {
			db, err := seqdb.OpenAuto(spec.DB)
			if err != nil {
				return nil, err
			}
			return &seqdb.RetryScanner{
				Inner:  faults.New(db, faults.TransientOn(1, 3), faults.TransientOn(3, 0)),
				Jitter: rand.New(rand.NewSource(spec.Seed)),
				Sleep:  func(time.Duration) {},
			}, nil
		},
	})
	resp := postJob(t, srv, submitBody(t, dbPath, matrixPath, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st struct {
		ID string `json:"id"`
	}
	decodeAndClose(t, resp, &st)
	final := waitState(t, srv, st.ID)
	if final["state"] != "done" {
		t.Fatalf("state %v (%v), want done despite transient faults", final["state"], final["error"])
	}
	tel, _ := final["telemetry"].(map[string]any)
	if tel == nil {
		t.Fatal("no telemetry in final status")
	}
	retry, _ := tel["retry"].(map[string]any)
	if retry == nil || retry["Retries"] == nil || retry["Retries"].(float64) < 2 {
		t.Errorf("telemetry retry counters = %v, want >= 2 retries", retry)
	}
}

// TestServerPermanentScannerFaultFailsJob: a permanent fault beneath a
// running job fails that job with the injected error surfaced — and only
// that job; the server keeps serving.
func TestServerPermanentScannerFaultFailsJob(t *testing.T) {
	dbPath, matrixPath := serverWorld(t, testutil.Seed(t), 40)
	broken := true
	_, srv := startServer(t, jobs.Options{
		OpenDB: func(spec jobs.Spec) (seqdb.Scanner, error) {
			db, err := seqdb.OpenAuto(spec.DB)
			if err != nil {
				return nil, err
			}
			if broken {
				return faults.New(db, faults.PermanentOn(1, 2)), nil
			}
			return db, nil
		},
	})
	resp := postJob(t, srv, submitBody(t, dbPath, matrixPath, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st struct {
		ID string `json:"id"`
	}
	decodeAndClose(t, resp, &st)
	final := waitState(t, srv, st.ID)
	if final["state"] != "failed" {
		t.Fatalf("state %v, want failed", final["state"])
	}
	if msg, _ := final["error"].(string); !strings.Contains(msg, "injected permanent failure") {
		t.Errorf("error = %q, want the injected failure surfaced", msg)
	}
	// The failed job's result is a 409, not a 500, and the server still
	// accepts and completes work.
	rr, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Errorf("result of failed job: status %d, want 409", rr.StatusCode)
	}
	broken = false
	resp = postJob(t, srv, submitBody(t, dbPath, matrixPath, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-failure submission: status %d", resp.StatusCode)
	}
	var st2 struct {
		ID string `json:"id"`
	}
	decodeAndClose(t, resp, &st2)
	if final := waitState(t, srv, st2.ID); final["state"] != "done" {
		t.Fatalf("post-failure job: state %v (%v)", final["state"], final["error"])
	}
}

// TestServerKillDuringJob is the HTTP-level kill-resume check: a server is
// killed (journaling suppressed) with a job mid-run, a new server over the
// same directory replays it, and the client — polling the same job ID over
// HTTP — sees it finish with a result identical to an undisturbed server's.
func TestServerKillDuringJob(t *testing.T) {
	dbPath, matrixPath := serverWorld(t, 77, 60)
	body := submitBody(t, dbPath, matrixPath, "")

	// Undisturbed baseline.
	_, baseSrv := startServer(t, jobs.Options{})
	resp := postJob(t, baseSrv, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("baseline submission: status %d", resp.StatusCode)
	}
	var baseSt struct {
		ID string `json:"id"`
	}
	decodeAndClose(t, resp, &baseSt)
	if st := waitState(t, baseSrv, baseSt.ID); st["state"] != "done" {
		t.Fatalf("baseline: state %v", st["state"])
	}
	baseResp, err := http.Get(baseSrv.URL + "/v1/jobs/" + baseSt.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(baseResp.Body)
	baseResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Victim server: kill after the first checkpoint.
	dir := t.TempDir()
	checkpointed := make(chan struct{})
	var once sync.Once
	victim, err := jobs.NewManager(jobs.Options{
		Dir:    dir,
		OpenDB: slowOpener(time.Millisecond),
		AfterCheckpoint: func(id string, phase int) {
			once.Do(func() { close(checkpointed) })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	victimSrv := httptest.NewServer(jobs.NewServer(victim).Handler())
	resp = postJob(t, victimSrv, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("victim submission: status %d", resp.StatusCode)
	}
	var killSt struct {
		ID string `json:"id"`
	}
	decodeAndClose(t, resp, &killSt)
	select {
	case <-checkpointed:
	case <-time.After(60 * time.Second):
		t.Fatal("job never checkpointed")
	}
	victimSrv.Close()
	victim.Crash()

	// Revived server over the same journal: same job ID, same result bytes.
	_, revivedSrv := startServer(t, jobs.Options{Dir: dir})
	final := waitState(t, revivedSrv, killSt.ID)
	if final["state"] != "done" {
		t.Fatalf("revived: state %v (%v)", final["state"], final["error"])
	}
	if resumed, _ := final["resumed"].(float64); resumed < 1 {
		t.Errorf("resumed = %v, want >= 1", final["resumed"])
	}
	gotResp, err := http.Get(revivedSrv.URL + "/v1/jobs/" + killSt.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(gotResp.Body)
	gotResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("result after kill-resume differs from undisturbed server\ngot:  %s\nwant: %s", got, want)
	}
}

// TestThrottleHonorsCancellation: the slow-store fault model itself must not
// wedge shutdown — a canceled context escapes mid-sleep.
func TestThrottleHonorsCancellation(t *testing.T) {
	seqs := make([][]pattern.Symbol, 100)
	for i := range seqs {
		seqs[i] = []pattern.Symbol{0, 1, 2}
	}
	th := &faults.Throttle{Inner: seqdb.NewMemDB(seqs), PerSeq: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- th.ScanContext(ctx, func(id int, seq []pattern.Symbol) error { return nil })
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("throttled scan returned nil after cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("throttled scan did not observe cancellation")
	}
}
