// Package faults provides deterministic fault injection for seqdb scanners,
// so the fault-tolerance of the mining pipeline — retrying transient
// failures, surfacing permanent ones, tolerating corrupted payloads — can be
// proven end-to-end in tests without touching real disks.
//
// A faults.Scanner wraps any seqdb.Scanner and fires its configured Faults
// at exact (scan attempt, sequence index) coordinates. Because the wrapped
// scanner only counts completed passes, a run that survives injected
// transient faults reports exactly the same scan count as a fault-free run.
package faults

import (
	"context"
	"fmt"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// Kind selects a fault's failure mode.
type Kind int

const (
	// Transient aborts the pass with an error marked retryable
	// (seqdb.MarkTransient); a retrying scanner heals it by re-running.
	Transient Kind = iota
	// Permanent aborts the pass with a non-retryable error.
	Permanent
	// Corrupt does not fail: it delivers the sequence with one symbol
	// flipped, simulating payload damage below checksum coverage.
	Corrupt
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault fires when the scanner's pass-attempt counter reaches Scan and the
// pass reaches sequence Seq.
type Fault struct {
	// Scan is the 1-based pass attempt the fault fires on. Retries advance
	// the attempt counter, so a non-Repeat fault heals on the re-run —
	// transient-then-heal by construction.
	Scan int
	// Seq is the 0-based sequence index the fault fires at.
	Seq int
	// Kind selects the failure mode.
	Kind Kind
	// Repeat makes the fault fire on every attempt >= Scan (a permanently
	// damaged region), not just the one attempt.
	Repeat bool
	// Pos is the symbol position Corrupt flips (clamped to the sequence).
	Pos int
	// Err overrides the injected error for Transient/Permanent faults.
	Err error
}

func (f *Fault) matches(attempt, id int) bool {
	if f.Seq != id {
		return false
	}
	if f.Repeat {
		return attempt >= f.Scan
	}
	return attempt == f.Scan
}

func (f *Fault) error() error {
	if f.Err != nil {
		return f.Err
	}
	return fmt.Errorf("faults: injected %s failure at scan %d sequence %d", f.Kind, f.Scan, f.Seq)
}

// TransientOn builds a fault that fails attempt scan at sequence seq with a
// retryable error and heals on the re-run.
func TransientOn(scan, seq int) Fault {
	return Fault{Scan: scan, Seq: seq, Kind: Transient}
}

// PermanentOn builds a fault that fails every attempt from scan onward at
// sequence seq with a non-retryable error.
func PermanentOn(scan, seq int) Fault {
	return Fault{Scan: scan, Seq: seq, Kind: Permanent, Repeat: true}
}

// CorruptAt builds a fault that flips the symbol at position pos of sequence
// seq on every attempt from scan onward.
func CorruptAt(scan, seq, pos int) Fault {
	return Fault{Scan: scan, Seq: seq, Kind: Corrupt, Repeat: true, Pos: pos}
}

// Scanner wraps a seqdb.Scanner with deterministic fault injection. It
// implements seqdb.ContextScanner; Len/Scans/ResetScans delegate to the
// wrapped scanner.
type Scanner struct {
	Inner  seqdb.Scanner
	Faults []Fault

	attempts int
}

// New wraps inner with the given faults.
func New(inner seqdb.Scanner, faults ...Fault) *Scanner {
	return &Scanner{Inner: inner, Faults: faults}
}

// Len returns the wrapped scanner's sequence count.
func (s *Scanner) Len() int { return s.Inner.Len() }

// Scans returns the wrapped scanner's completed-pass count (failed attempts
// do not count, mirroring every other Scanner).
func (s *Scanner) Scans() int { return s.Inner.Scans() }

// ResetScans zeroes the wrapped scanner's pass counter. The attempt counter
// driving fault coordinates is not reset.
func (s *Scanner) ResetScans() { s.Inner.ResetScans() }

// Attempts returns the number of pass attempts started, including failed
// ones.
func (s *Scanner) Attempts() int { return s.attempts }

// Scan implements seqdb.Scanner.
func (s *Scanner) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}

// ScanContext implements seqdb.ContextScanner, firing any fault whose
// coordinates match the current attempt.
func (s *Scanner) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	s.attempts++
	attempt := s.attempts
	return seqdb.ScanContext(ctx, s.Inner, func(id int, seq []pattern.Symbol) error {
		for i := range s.Faults {
			f := &s.Faults[i]
			if !f.matches(attempt, id) {
				continue
			}
			switch f.Kind {
			case Transient:
				return seqdb.MarkTransient(f.error())
			case Permanent:
				return f.error()
			case Corrupt:
				cp := make([]pattern.Symbol, len(seq))
				copy(cp, seq)
				pos := f.Pos
				if pos >= len(cp) {
					pos = len(cp) - 1
				}
				if pos >= 0 {
					cp[pos] ^= 1
				}
				seq = cp
			}
		}
		return fn(id, seq)
	})
}
