package faults

import (
	"context"
	"time"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// Throttle wraps a seqdb.Scanner and delays every sequence delivery by
// PerSeq — the server-level fault model for a slow backing store (an
// overloaded disk, a cold network volume) underneath a running mining job.
// The delay honors the scan context, so a cancelled or deadline-expired job
// escapes the slow store within one sequence, exactly like a healthy one.
//
// Len/Scans/ResetScans delegate to the wrapped scanner; a throttled pass
// that completes still counts as one scan.
type Throttle struct {
	Inner seqdb.Scanner
	// PerSeq is the delay injected before each sequence (0 disables).
	PerSeq time.Duration
}

// Len returns the wrapped scanner's sequence count.
func (s *Throttle) Len() int { return s.Inner.Len() }

// Scans returns the wrapped scanner's completed-pass count.
func (s *Throttle) Scans() int { return s.Inner.Scans() }

// ResetScans zeroes the wrapped scanner's pass counter.
func (s *Throttle) ResetScans() { s.Inner.ResetScans() }

// Path exposes the wrapped scanner's backing file, so checkpoint identity
// checks see through the throttle like they see through RetryScanner.
func (s *Throttle) Path() string {
	if p, ok := s.Inner.(interface{ Path() string }); ok {
		return p.Path()
	}
	return ""
}

// Scan implements seqdb.Scanner.
func (s *Throttle) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}

// ScanContext implements seqdb.ContextScanner, sleeping PerSeq (or until
// cancellation) before every delivery.
func (s *Throttle) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return seqdb.ScanContext(ctx, s.Inner, func(id int, seq []pattern.Symbol) error {
		if s.PerSeq > 0 {
			if err := sleepCtx(ctx, s.PerSeq); err != nil {
				return err
			}
		}
		return fn(id, seq)
	})
}

// sleepCtx sleeps for d or until ctx is cancelled. A nil ctx sleeps plainly.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
