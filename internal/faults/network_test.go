package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

type okDoer struct{ calls int }

func (d *okDoer) Do(req *http.Request) (*http.Response, error) {
	d.calls++
	return &http.Response{StatusCode: 200, Body: io.NopCloser(strings.NewReader("ok"))}, nil
}

func netReq(t *testing.T, ctx context.Context) *http.Request {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "POST", "http://node-000/v1/shards/probe", nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestNetDoerDropWindow: DropOn fails exactly the requests inside its
// ordinal window — a deterministic flap that heals on schedule.
func TestNetDoerDropWindow(t *testing.T) {
	inner := &okDoer{}
	d := &NetDoer{Inner: inner, Faults: []NetFault{DropOn(2, 2)}}
	want := []bool{true, false, false, true, true}
	for i, ok := range want {
		_, err := d.Do(netReq(t, context.Background()))
		if (err == nil) != ok {
			t.Fatalf("request %d: err=%v, want ok=%v", i+1, err, ok)
		}
	}
	if inner.calls != 3 {
		t.Errorf("inner transport saw %d requests, want 3", inner.calls)
	}
	if d.Requests() != 5 {
		t.Errorf("Requests() = %d, want 5", d.Requests())
	}
}

// TestNetDoerPermanentDrop: Count -1 never heals, and a custom error is
// surfaced verbatim.
func TestNetDoerPermanentDrop(t *testing.T) {
	boom := errors.New("boom")
	d := &NetDoer{Inner: &okDoer{}, Faults: []NetFault{{Req: 1, Count: -1, Err: boom}}}
	for i := 0; i < 3; i++ {
		if _, err := d.Do(netReq(t, context.Background())); !errors.Is(err, boom) {
			t.Fatalf("request %d: err=%v, want boom", i+1, err)
		}
	}
}

// TestNetDoerDelayHonorsContext: a delayed request under an already-dead
// context returns the context error instead of stalling.
func TestNetDoerDelayHonorsContext(t *testing.T) {
	d := &NetDoer{Inner: &okDoer{}, Faults: []NetFault{DelayOn(1, -1, time.Hour)}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := d.Do(netReq(t, ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled delay stalled")
	}
}

// TestNetDoerDelayThenForward: a short delay stalls but still forwards.
func TestNetDoerDelayThenForward(t *testing.T) {
	inner := &okDoer{}
	d := &NetDoer{Inner: inner, Faults: []NetFault{DelayOn(1, 1, time.Millisecond)}}
	if _, err := d.Do(netReq(t, context.Background())); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 1 {
		t.Errorf("delayed request not forwarded")
	}
}
