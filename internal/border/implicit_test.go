package border

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

// buildRegion derives (lowerWithFloor, ceiling, explicitAmbiguous) from a
// monotone truth oracle over the subpattern closure of a top pattern, the
// way Phase 2 would: sample-frequent = truth shrunk by one "uncertainty"
// level, ambiguous = the band between.
func buildRegion(top pattern.Pattern, truthBorder *pattern.Set) (lower, ceiling, ambiguous *pattern.Set) {
	region := pattern.NewSet(top)
	var rec func(p pattern.Pattern)
	rec = func(p pattern.Pattern) {
		for _, q := range p.ImmediateSubpatterns() {
			if region.Add(q) {
				rec(q)
			}
		}
	}
	rec(top)

	frequent := pattern.NewSet()
	ambiguous = pattern.NewSet()
	for _, p := range region.Patterns() {
		switch {
		case truthBorder.CoveredBy(p) && p.K() <= 1:
			// Exactly-labeled frequent singletons (Phase 1).
			frequent.Add(p)
		case truthBorder.CoveredBy(p) && p.K() <= truthBorder.MinK():
			// Deep inside the frequent region: sample-confident.
			frequent.Add(p)
		default:
			ambiguous.Add(p)
		}
	}
	lower = pattern.Border(frequent)
	for _, p := range frequent.Patterns() {
		if p.K() == 1 {
			lower.Add(p)
		}
	}
	combined := frequent.Clone()
	combined.Union(ambiguous)
	ceiling = pattern.Border(combined)
	return lower, ceiling, ambiguous
}

func TestCollapseImplicitMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 25; trial++ {
		top := make(pattern.Pattern, 5)
		for i := range top {
			top[i] = pattern.Symbol(rng.Intn(4))
		}
		// Random monotone truth within the region.
		region := pattern.NewSet(top)
		var rec func(p pattern.Pattern)
		rec = func(p pattern.Pattern) {
			for _, q := range p.ImmediateSubpatterns() {
				if region.Add(q) {
					rec(q)
				}
			}
		}
		rec(top)
		members := region.Patterns()
		truthBorder := pattern.NewSet(members[rng.Intn(len(members))])
		if rng.Intn(2) == 0 {
			truthBorder.Add(members[rng.Intn(len(members))])
		}
		probe := func(ps []pattern.Pattern) ([]float64, error) {
			out := make([]float64, len(ps))
			for i, p := range ps {
				if truthBorder.CoveredBy(p) {
					out[i] = 1
				}
			}
			return out, nil
		}
		lower, ceiling, ambiguous := buildRegion(top, truthBorder)
		budget := 1 + rng.Intn(6)
		cfg := Config{MinMatch: 0.5, MemBudget: budget, Probe: probe}

		explicit, err := Collapse(cfg, lower, ambiguous)
		if err != nil {
			t.Fatal(err)
		}
		implicit, err := CollapseImplicit(cfg, lower, ceiling)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		label := fmt.Sprintf("trial %d budget %d", trial, budget)
		for _, p := range explicit.Border.Patterns() {
			if !implicit.Border.Contains(p) {
				t.Errorf("%s: implicit border missing %v", label, p)
			}
		}
		for _, p := range implicit.Border.Patterns() {
			if !explicit.Border.Contains(p) {
				t.Errorf("%s: implicit border extra %v", label, p)
			}
		}
	}
}

func TestCollapseImplicitEmptyRegion(t *testing.T) {
	probe := func(ps []pattern.Pattern) ([]float64, error) {
		t.Fatal("probe called with an empty region")
		return nil, nil
	}
	lower := pattern.NewSet(pattern.MustNew(0, 1))
	res, err := CollapseImplicit(Config{MinMatch: 0.5, MemBudget: 4, Probe: probe}, lower, lower.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scans != 0 {
		t.Errorf("Scans=%d", res.Scans)
	}
	if !res.Border.Contains(pattern.MustNew(0, 1)) {
		t.Errorf("border: %v", res.Border.Patterns())
	}
}

func TestClosure(t *testing.T) {
	border := pattern.NewSet(pattern.MustNew(0, 1, 2))
	closure := Closure(border, nil)
	for _, want := range []pattern.Pattern{
		pattern.MustNew(0, 1, 2), pattern.MustNew(0, 1), pattern.MustNew(1, 2),
		pattern.MustNew(0, pattern.Eternal, 2),
		pattern.MustNew(0), pattern.MustNew(1), pattern.MustNew(2),
	} {
		if !closure.Contains(want) {
			t.Errorf("closure missing %v", want)
		}
	}
	if closure.Len() != 7 {
		t.Errorf("closure size %d: %v", closure.Len(), closure.Patterns())
	}
}

func TestCollapseImplicitValidation(t *testing.T) {
	if _, err := CollapseImplicit(Config{}, pattern.NewSet(), pattern.NewSet()); err == nil {
		t.Error("invalid config accepted")
	}
}
