package border

import (
	"testing"

	"repro/internal/pattern"
)

// singleLevelRegion is an ambiguous region whose floor and ceiling coincide:
// three 2-patterns, none a subpattern of another, so no probe outcome can
// propagate to a sibling.
func singleLevelRegion() *pattern.Set {
	return pattern.NewSet(
		pattern.MustNew(d1, d2),
		pattern.MustNew(d2, d3),
		pattern.MustNew(d3, d4),
	)
}

func TestPickHalfwayEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		pending    *pattern.Set
		budget     int
		wantLen    int
		wantLevels []int // expected K of each pick, in order
	}{
		// lo == hi: the "halfway" schedule degenerates to the single level.
		{"single-level-budget-2", singleLevelRegion(), 2, 2, []int{2, 2}},
		{"single-level-budget-covers-all", singleLevelRegion(), 10, 3, []int{2, 2, 2}},
		// A chain visits the halfway level before the interval's ends.
		{"chain-subdivision-order", chain(3), 10, 3, []int{2, 1, 3}},
		{"chain-budget-1-picks-halfway", chain(3), 1, 1, []int{2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PickHalfway(tc.pending, tc.budget)
			if len(got) != tc.wantLen {
				t.Fatalf("picked %d patterns, want %d: %v", len(got), tc.wantLen, got)
			}
			for i, p := range got {
				if p.K() != tc.wantLevels[i] {
					t.Errorf("pick %d is %v (level %d), want level %d", i, p, p.K(), tc.wantLevels[i])
				}
			}
		})
	}
}

func TestCollapseSingleLevelRegion(t *testing.T) {
	// With lo == hi there is nothing to collapse: every member must be probed
	// individually (no Apriori propagation between same-level siblings), in
	// ceil(3/budget) scans.
	for _, tc := range []struct {
		name         string
		cutoff       int // levelOracle: frequent iff K <= cutoff
		budget       int
		wantScans    int
		wantProbed   int
		wantFrequent int
	}{
		{"all-infrequent-budget-2", 1, 2, 2, 3, 0},
		{"all-frequent-budget-2", 2, 2, 2, 3, 3},
		{"all-frequent-one-scan", 2, 10, 1, 3, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			oracle := &levelOracle{cutoff: tc.cutoff}
			res, err := Collapse(Config{MinMatch: 0.5, MemBudget: tc.budget, Probe: oracle.probe},
				pattern.NewSet(), singleLevelRegion())
			if err != nil {
				t.Fatal(err)
			}
			if res.Scans != tc.wantScans || res.Probed != tc.wantProbed {
				t.Errorf("scans=%d probed=%d, want %d/%d", res.Scans, res.Probed, tc.wantScans, tc.wantProbed)
			}
			if res.Frequent.Len() != tc.wantFrequent {
				t.Errorf("frequent=%d, want %d", res.Frequent.Len(), tc.wantFrequent)
			}
			if oracle.calls != res.Scans {
				t.Errorf("Scans=%d but probe saw %d calls", res.Scans, oracle.calls)
			}
		})
	}
}

func TestCollapseAllInfrequentRegion(t *testing.T) {
	// Chain d1 < d1d2 < d1d2d3, everything infrequent. With budget 1 the
	// halfway probe (d1d2) kills d1d2d3 by Apriori, then d1 is probed: two
	// scans, two probes resolve three patterns. A large budget probes the
	// whole region in one scan.
	t.Run("budget-1", func(t *testing.T) {
		oracle := &levelOracle{cutoff: 0}
		res, err := Collapse(Config{MinMatch: 0.5, MemBudget: 1, Probe: oracle.probe},
			pattern.NewSet(), chain(3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Scans != 2 || res.Probed != 2 {
			t.Errorf("scans=%d probed=%d, want 2/2 (superpattern killed by Apriori)", res.Scans, res.Probed)
		}
		if res.Frequent.Len() != 0 || res.Border.Len() != 0 {
			t.Errorf("frequent=%v border=%v, want both empty",
				res.Frequent.Patterns(), res.Border.Patterns())
		}
		if _, probed := res.Exact[pattern.MustNew(d1, d2, d3).Key()]; probed {
			t.Error("d1d2d3 was probed despite its infrequent subpattern")
		}
	})
	t.Run("large-budget", func(t *testing.T) {
		oracle := &levelOracle{cutoff: 0}
		res, err := Collapse(Config{MinMatch: 0.5, MemBudget: 100, Probe: oracle.probe},
			pattern.NewSet(), chain(3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Scans != 1 || res.Probed != 3 {
			t.Errorf("scans=%d probed=%d, want 1/3 (whole region in one batch)", res.Scans, res.Probed)
		}
		if res.Frequent.Len() != 0 {
			t.Errorf("frequent=%v, want empty", res.Frequent.Patterns())
		}
	})
}

func TestCollapseImplicitSingleLevelGap(t *testing.T) {
	// The borders are adjacent: lower = {d1, d2}, ceiling = {d1d2}. The
	// halfway construction yields no strictly-between layer, so the ceiling
	// itself is the only probe — one scan, one probe, either way the outcome
	// goes.
	lower := pattern.NewSet(pattern.MustNew(d1), pattern.MustNew(d2))
	upper := pattern.NewSet(pattern.MustNew(d1, d2))
	for _, tc := range []struct {
		name         string
		cutoff       int
		wantFrequent int // closure size
		wantBorder   int
	}{
		// Frequent probe: closure of border {d1d2} is {d1d2, d1, d2}.
		{"probe-frequent", 2, 3, 1},
		// Infrequent probe: border stays {d1, d2}.
		{"probe-infrequent", 1, 2, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			oracle := &levelOracle{cutoff: tc.cutoff}
			res, err := CollapseImplicit(Config{MinMatch: 0.5, MemBudget: 4, Probe: oracle.probe}, lower, upper)
			if err != nil {
				t.Fatal(err)
			}
			if res.Scans != 1 || res.Probed != 1 {
				t.Errorf("scans=%d probed=%d, want 1/1", res.Scans, res.Probed)
			}
			if res.Frequent.Len() != tc.wantFrequent || res.Border.Len() != tc.wantBorder {
				t.Errorf("frequent=%v border=%v, want %d/%d members",
					res.Frequent.Patterns(), res.Border.Patterns(), tc.wantFrequent, tc.wantBorder)
			}
		})
	}
}

func TestCollapseImplicitAllInfrequentRegion(t *testing.T) {
	// lower = {d1}, ceiling = {d1d1d1}, nothing above level 1 frequent. The
	// implicit region is {d1d1, d1*d1, d1d1d1}; once both level-2 members are
	// excluded, the ceiling is dead by Apriori and is never probed.
	lower := pattern.NewSet(pattern.MustNew(d1))
	upper := pattern.NewSet(pattern.MustNew(d1, d1, d1))
	top := pattern.MustNew(d1, d1, d1)
	t.Run("large-budget", func(t *testing.T) {
		oracle := &levelOracle{cutoff: 1}
		res, err := CollapseImplicit(Config{MinMatch: 0.5, MemBudget: 8, Probe: oracle.probe}, lower, upper)
		if err != nil {
			t.Fatal(err)
		}
		// One batch holds both level-2 members plus the ceiling.
		if res.Scans != 1 || res.Probed != 3 {
			t.Errorf("scans=%d probed=%d, want 1/3", res.Scans, res.Probed)
		}
		if res.Frequent.Len() != 1 || !res.Frequent.Contains(pattern.MustNew(d1)) {
			t.Errorf("frequent=%v, want exactly {d1}", res.Frequent.Patterns())
		}
	})
	t.Run("budget-1", func(t *testing.T) {
		oracle := &levelOracle{cutoff: 1}
		res, err := CollapseImplicit(Config{MinMatch: 0.5, MemBudget: 1, Probe: oracle.probe}, lower, upper)
		if err != nil {
			t.Fatal(err)
		}
		// Two scans exclude the two level-2 members; the ceiling dies by
		// Apriori without a probe.
		if res.Scans != 2 || res.Probed != 2 {
			t.Errorf("scans=%d probed=%d, want 2/2", res.Scans, res.Probed)
		}
		if _, probed := res.Exact[top.Key()]; probed {
			t.Error("ceiling was probed despite an excluded subpattern")
		}
		if res.Frequent.Len() != 1 {
			t.Errorf("frequent=%v, want exactly {d1}", res.Frequent.Patterns())
		}
	})
}
