// Package border implements Phase 3 of the paper's algorithm: collapsing
// the gap between the two borders that embrace the ambiguous patterns, so
// that the exact border of frequent patterns is located in a minimal number
// of full database scans (Algorithm 4.3).
//
// Phase 2 hands over the explicitly enumerated ambiguous region (the paper
// generates layer members on the fly with Algorithm 4.4 — implemented and
// tested as pattern.Halfway — but with the region already enumerated the
// same probe layers can be picked directly from it, with identical scan
// behavior and simpler memory accounting). Each iteration fills a memory
// budget of counters with the ambiguous patterns of highest collapsing
// power — the halfway lattice level between the region's floor and ceiling,
// then the quarterway levels, and so on — performs one scan to obtain their
// exact matches, and propagates the outcomes across the remaining region
// with the Apriori property: a frequent probe confirms all of its ambiguous
// subpatterns, an infrequent probe kills all of its ambiguous superpatterns.
package border

import (
	"context"
	"fmt"

	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// Config parameterizes a finalization run.
type Config struct {
	// MinMatch is the user's threshold; probes at or above it are frequent.
	MinMatch float64
	// MemBudget is the maximum number of pattern counters held per scan
	// (the paper's "until the memory is filled up"). Must be >= 1.
	MemBudget int
	// Probe computes exact database matches for a batch of patterns at the
	// cost of one full scan (e.g. miner.MatchDBValuer).
	Probe miner.Valuer
	// Ctx, when non-nil, is checked between probe scans; a cancelled run
	// returns an error wrapping Ctx.Err(). Pair it with a context-aware
	// Probe (miner.MatchDBValuerContext) so cancellation also lands
	// mid-scan, within one sequence.
	Ctx context.Context
	// Metrics, when non-nil, receives probe telemetry (probe scans, batch
	// sizes, probed layer choices). Nil disables collection.
	Metrics *telemetry.Metrics
	// AfterScan, when non-nil, observes the loop's live state after every
	// completed probe scan — the checkpoint/progress hook. The state's sets
	// and map are the loop's own (the callback must copy anything it
	// retains); a non-nil error aborts finalization with that error.
	AfterScan func(*State) error
}

// interrupted returns a wrapped cancellation error if cfg.Ctx is done.
func (c Config) interrupted() error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		return fmt.Errorf("border: interrupted between probe scans: %w", err)
	}
	return nil
}

func (c Config) validate() error {
	if c.MinMatch < 0 || c.MinMatch > 1 {
		return fmt.Errorf("border: MinMatch %v outside [0,1]", c.MinMatch)
	}
	if c.MemBudget < 1 {
		return fmt.Errorf("border: MemBudget %d < 1", c.MemBudget)
	}
	if c.Probe == nil {
		return fmt.Errorf("border: Probe is required")
	}
	return nil
}

// Result reports a finalization run.
type Result struct {
	// Frequent is the final frequent set: the sample-frequent patterns plus
	// every ambiguous pattern confirmed against the database.
	Frequent *pattern.Set
	// Border is the border of Frequent — the algorithm's output (FQT).
	Border *pattern.Set
	// Scans is the number of full database scans spent probing.
	Scans int
	// Probed is the number of patterns counted against the database.
	Probed int
	// Exact records the exact database match of every probed pattern.
	Exact map[string]float64
}

// Collapse finalizes the border via border collapsing. sampleFrequent holds
// Phase 2's frequent patterns (accepted at confidence 1-δ without
// re-probing, per the paper); ambiguous holds the patterns needing exact
// evaluation. Neither input set is modified.
func Collapse(cfg Config, sampleFrequent, ambiguous *pattern.Set) (*Result, error) {
	return Finalize(cfg, sampleFrequent, ambiguous, PickHalfway)
}

// PickFunc selects up to budget pending patterns to probe in the next scan.
// It must return at least one pattern while any are pending.
type PickFunc func(pending *pattern.Set, budget int) []pattern.Pattern

// State is a resumable snapshot of the probe-and-propagate loop: the
// frequent set as propagated so far, the still-unresolved region, the exact
// matches measured, and the scans spent. FinalizeState takes ownership of
// the sets and mutates them in place; build a State from checkpoint data to
// continue an interrupted finalization without repeating any probe scan.
type State struct {
	// Frequent holds the sample-frequent patterns plus every probe-confirmed
	// and Apriori-propagated pattern so far.
	Frequent *pattern.Set
	// Pending is the still-unresolved ambiguous region.
	Pending *pattern.Set
	// Exact records the measured database match of every probed pattern.
	Exact map[string]float64
	// Scans and Probed count completed probe scans and probed patterns.
	Scans  int
	Probed int
}

// NewState builds the initial loop state from Phase 2's outputs. Neither
// input set is modified.
func NewState(sampleFrequent, ambiguous *pattern.Set) *State {
	return &State{
		Frequent: sampleFrequent.Clone(),
		Pending:  ambiguous.Clone(),
		Exact:    make(map[string]float64),
	}
}

// Finalize runs the probe-and-propagate loop with a pluggable probe-order
// strategy (halfway layers for Collapse, bottom-up for the level-wise
// baseline in package levelwise). The strategy only affects how many scans
// the loop needs — the resulting frequent set is always exact.
func Finalize(cfg Config, sampleFrequent, ambiguous *pattern.Set, pick PickFunc) (*Result, error) {
	return FinalizeState(cfg, NewState(sampleFrequent, ambiguous), pick)
}

// FinalizeState runs the probe-and-propagate loop from an explicit state —
// either a fresh one (NewState) or one rebuilt from a checkpoint, in which
// case every scan the checkpoint recorded is skipped. The state is mutated
// in place as the loop progresses, so cfg.AfterScan observes live progress;
// the final Result is assembled from it. Because the pick strategy is a
// deterministic function of the pending set, a resumed loop performs
// exactly the scans the uninterrupted loop had left and lands on an
// identical frequent set.
func FinalizeState(cfg Config, st *State, pick PickFunc) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if st == nil || st.Frequent == nil || st.Pending == nil || st.Exact == nil {
		return nil, fmt.Errorf("border: incomplete state")
	}
	idx := buildLevelIndex(st.Pending)
	for st.Pending.Len() > 0 {
		if err := cfg.interrupted(); err != nil {
			return nil, err
		}
		batch := pick(st.Pending, cfg.MemBudget)
		if len(batch) == 0 {
			return nil, fmt.Errorf("border: probe strategy returned no patterns with %d pending", st.Pending.Len())
		}
		values, err := cfg.Probe(batch)
		if err != nil {
			return nil, err
		}
		if len(values) != len(batch) {
			return nil, fmt.Errorf("border: probe returned %d values for %d patterns", len(values), len(batch))
		}
		st.Scans++
		st.Probed += len(batch)
		cfg.Metrics.ProbeScan(len(batch))
		for i, p := range batch {
			cfg.Metrics.ProbeLayer(p.K())
			st.Exact[p.Key()] = values[i]
			st.Pending.Remove(p)
			idx.remove(p)
			if values[i] >= cfg.MinMatch {
				st.Frequent.Add(p)
				propagateFrequent(p, st.Pending, idx, st.Frequent)
			} else {
				propagateInfrequent(p, st.Pending, idx)
			}
		}
		if cfg.AfterScan != nil {
			if err := cfg.AfterScan(st); err != nil {
				return nil, err
			}
		}
	}
	res := &Result{
		Frequent: st.Frequent,
		Exact:    st.Exact,
		Scans:    st.Scans,
		Probed:   st.Probed,
	}
	res.Border = pattern.Border(res.Frequent)
	return res, nil
}

// levelIndex buckets the pending region by lattice level K, so Apriori
// propagation visits only the levels a probe outcome can actually reach.
// Distinct trimmed patterns related by ⊑ always differ in K (a subpattern
// with the same non-eternal count would be position-wise equal), so a
// frequent probe at level k can only confirm pending patterns at levels
// below k, and an infrequent one can only kill levels above k. The old
// propagation rescanned the entire pending set for every probe in the batch
// — O(batch × pending) subpattern tests per scan; the index reduces that to
// the reachable levels, which on wide ambiguous regions is most of the work.
//
// The index is internal to the loop: it is rebuilt from Pending at
// FinalizeState entry (State's public checkpoint shape is unchanged) and
// maintained alongside every Pending mutation.
type levelIndex struct {
	levels map[int]*pattern.Set
	lo, hi int // bounds of the initial region; levels only ever empty out
}

// buildLevelIndex buckets pending by K.
func buildLevelIndex(pending *pattern.Set) *levelIndex {
	idx := &levelIndex{levels: make(map[int]*pattern.Set)}
	pending.ForEach(func(p pattern.Pattern) bool {
		k := p.K()
		s := idx.levels[k]
		if s == nil {
			s = pattern.NewSet()
			idx.levels[k] = s
		}
		s.Add(p)
		if len(idx.levels) == 1 && s.Len() == 1 {
			idx.lo, idx.hi = k, k
		} else {
			if k < idx.lo {
				idx.lo = k
			}
			if k > idx.hi {
				idx.hi = k
			}
		}
		return true
	})
	return idx
}

// remove drops p from its level bucket.
func (ix *levelIndex) remove(p pattern.Pattern) {
	k := p.K()
	if s := ix.levels[k]; s != nil {
		s.Remove(p)
		if s.Len() == 0 {
			delete(ix.levels, k)
		}
	}
}

// propagateFrequent moves every pending subpattern of p to the frequent set
// (Apriori: subpatterns of a frequent pattern are frequent). Only levels
// below K(p) can hold subpatterns of p.
func propagateFrequent(p pattern.Pattern, pending *pattern.Set, ix *levelIndex, frequent *pattern.Set) {
	var hits []pattern.Pattern
	for l := ix.lo; l < p.K(); l++ {
		s := ix.levels[l]
		if s == nil {
			continue
		}
		s.ForEach(func(q pattern.Pattern) bool {
			if q.IsSubpatternOf(p) {
				hits = append(hits, q)
			}
			return true
		})
	}
	for _, q := range hits {
		pending.Remove(q)
		ix.remove(q)
		frequent.Add(q)
	}
}

// propagateInfrequent drops every pending superpattern of p (Apriori:
// superpatterns of an infrequent pattern are infrequent). Only levels above
// K(p) can hold superpatterns of p.
func propagateInfrequent(p pattern.Pattern, pending *pattern.Set, ix *levelIndex) {
	var hits []pattern.Pattern
	for l := p.K() + 1; l <= ix.hi; l++ {
		s := ix.levels[l]
		if s == nil {
			continue
		}
		s.ForEach(func(q pattern.Pattern) bool {
			if p.IsSubpatternOf(q) {
				hits = append(hits, q)
			}
			return true
		})
	}
	for _, q := range hits {
		pending.Remove(q)
		ix.remove(q)
	}
}

// PickHalfway selects up to budget pending patterns in the halfway-layer
// order of Algorithm 4.3: the lattice levels of the pending region are
// visited in binary-subdivision order (halfway level first, then the two
// quarterway levels, then the 1/8 levels, ...), which maximizes the expected
// collapsing power of every counter held in memory.
func PickHalfway(pending *pattern.Set, budget int) []pattern.Pattern {
	byLevel := groupByLevel(pending)
	lo, hi := pending.MinK(), pending.MaxK()
	var out []pattern.Pattern
	for _, level := range subdivisionOrder(lo, hi) {
		for _, p := range byLevel[level] {
			if len(out) >= budget {
				return out
			}
			out = append(out, p)
		}
	}
	return out
}

// groupByLevel buckets a set's members by K, each bucket key-sorted (the
// set's Patterns order) for determinism.
func groupByLevel(s *pattern.Set) map[int][]pattern.Pattern {
	byLevel := make(map[int][]pattern.Pattern)
	for _, p := range s.Patterns() {
		k := p.K()
		byLevel[k] = append(byLevel[k], p)
	}
	return byLevel
}

// subdivisionOrder lists the levels of [lo, hi] in binary-subdivision order:
// the midpoint of the full interval first, then midpoints of the two halves,
// and so on — Algorithm 4.3's halfway/quarterway/… layer schedule.
func subdivisionOrder(lo, hi int) []int {
	if lo > hi {
		return nil
	}
	type interval struct{ a, b int }
	queue := []interval{{lo, hi}}
	seen := make(map[int]bool)
	var out []int
	for len(queue) > 0 {
		iv := queue[0]
		queue = queue[1:]
		if iv.a > iv.b {
			continue
		}
		mid := (iv.a + iv.b + 1) / 2 // ⌈(a+b)/2⌉, matching Algorithm 4.4
		if !seen[mid] {
			seen[mid] = true
			out = append(out, mid)
		}
		if iv.a <= mid-1 {
			queue = append(queue, interval{iv.a, mid - 1})
		}
		if mid+1 <= iv.b {
			queue = append(queue, interval{mid + 1, iv.b})
		}
	}
	// Safety: ensure completeness even if subdivision missed a level.
	for l := lo; l <= hi; l++ {
		if !seen[l] {
			out = append(out, l)
		}
	}
	return out
}
