package border

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

const (
	d1 = pattern.Symbol(0)
	d2 = pattern.Symbol(1)
	d3 = pattern.Symbol(2)
	d4 = pattern.Symbol(3)
	d5 = pattern.Symbol(4)
	et = pattern.Eternal
)

// chain returns the Figure 6(a) ambiguous chain d1, d1d2, ..., d1..dLen.
func chain(length int) *pattern.Set {
	s := pattern.NewSet()
	for l := 1; l <= length; l++ {
		p := make(pattern.Pattern, l)
		for i := range p {
			p[i] = pattern.Symbol(i)
		}
		s.Add(p)
	}
	return s
}

// levelOracle probes patterns as frequent iff K <= cutoff, counting calls.
type levelOracle struct {
	cutoff int
	calls  int
}

func (o *levelOracle) probe(ps []pattern.Pattern) ([]float64, error) {
	o.calls++
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p.K() <= o.cutoff {
			out[i] = 1
		}
	}
	return out, nil
}

func TestCollapseChainResolvesExactly(t *testing.T) {
	for _, cutoff := range []int{0, 1, 2, 3, 4, 5} {
		oracle := &levelOracle{cutoff: cutoff}
		cfg := Config{MinMatch: 0.5, MemBudget: 1, Probe: oracle.probe}
		res, err := Collapse(cfg, pattern.NewSet(), chain(5))
		if err != nil {
			t.Fatal(err)
		}
		want := cutoff
		if want > 5 {
			want = 5
		}
		if res.Frequent.Len() != want {
			t.Errorf("cutoff=%d: %d frequent, want %d", cutoff, res.Frequent.Len(), want)
		}
		for _, p := range res.Frequent.Patterns() {
			if p.K() > cutoff {
				t.Errorf("cutoff=%d: %v wrongly frequent", cutoff, p)
			}
		}
		if want > 0 {
			if res.Border.Len() != 1 || res.Border.Patterns()[0].K() != want {
				t.Errorf("cutoff=%d: border=%v", cutoff, res.Border.Patterns())
			}
		}
	}
}

func TestCollapseFirstProbeIsHalfway(t *testing.T) {
	// Figure 6(a): for the chain of 5 ambiguous patterns, d1d2d3 (level 3)
	// has the most collapsing power and must be probed first.
	var first pattern.Pattern
	probe := func(ps []pattern.Pattern) ([]float64, error) {
		if first == nil {
			first = ps[0]
		}
		return make([]float64, len(ps)), nil
	}
	cfg := Config{MinMatch: 0.5, MemBudget: 1, Probe: probe}
	if _, err := Collapse(cfg, pattern.NewSet(), chain(5)); err != nil {
		t.Fatal(err)
	}
	if first.K() != 3 {
		t.Errorf("first probe at level %d, want 3 (halfway)", first.K())
	}
}

func TestCollapseBeatsLevelOrderOnChains(t *testing.T) {
	// With budget 1, collapsing a length-L chain takes O(log L) scans while
	// bottom-up probing takes O(L).
	const length = 32
	for _, cutoff := range []int{0, 7, 16, 31, 32} {
		oracle := &levelOracle{cutoff: cutoff}
		cfg := Config{MinMatch: 0.5, MemBudget: 1, Probe: oracle.probe}
		res, err := Collapse(cfg, pattern.NewSet(), chain(length))
		if err != nil {
			t.Fatal(err)
		}
		// ceil(log2(32)) = 5; allow one extra for boundary effects.
		if res.Scans > 7 {
			t.Errorf("cutoff=%d: collapse used %d scans on a %d-chain", cutoff, res.Scans, length)
		}
		if res.Scans != oracle.calls {
			t.Errorf("Scans=%d but oracle saw %d calls", res.Scans, oracle.calls)
		}
	}
}

func TestCollapseBudgetRespected(t *testing.T) {
	var maxBatch int
	probe := func(ps []pattern.Pattern) ([]float64, error) {
		if len(ps) > maxBatch {
			maxBatch = len(ps)
		}
		return make([]float64, len(ps)), nil
	}
	cfg := Config{MinMatch: 0.5, MemBudget: 3, Probe: probe}
	if _, err := Collapse(cfg, pattern.NewSet(), chain(10)); err != nil {
		t.Fatal(err)
	}
	if maxBatch > 3 {
		t.Errorf("batch of %d exceeded budget 3", maxBatch)
	}
}

func TestCollapseLargeBudgetSingleScan(t *testing.T) {
	oracle := &levelOracle{cutoff: 3}
	cfg := Config{MinMatch: 0.5, MemBudget: 1000, Probe: oracle.probe}
	res, err := Collapse(cfg, pattern.NewSet(), chain(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scans != 1 {
		t.Errorf("whole region fits in memory but used %d scans", res.Scans)
	}
}

func TestCollapseEmptyAmbiguous(t *testing.T) {
	probe := func(ps []pattern.Pattern) ([]float64, error) {
		t.Fatal("probe called with no ambiguous patterns")
		return nil, nil
	}
	sampleFrequent := pattern.NewSet(pattern.MustNew(d1, d2))
	res, err := Collapse(Config{MinMatch: 0.5, MemBudget: 1, Probe: probe}, sampleFrequent, pattern.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scans != 0 {
		t.Errorf("Scans=%d, want 0", res.Scans)
	}
	if !res.Frequent.Contains(pattern.MustNew(d1, d2)) {
		t.Error("sample-frequent patterns lost")
	}
	if !res.Border.Contains(pattern.MustNew(d1, d2)) {
		t.Error("border must contain the lone frequent pattern")
	}
}

func TestCollapseDoesNotMutateInputs(t *testing.T) {
	oracle := &levelOracle{cutoff: 2}
	amb := chain(4)
	sf := pattern.NewSet(pattern.MustNew(d5))
	if _, err := Collapse(Config{MinMatch: 0.5, MemBudget: 1, Probe: oracle.probe}, sf, amb); err != nil {
		t.Fatal(err)
	}
	if amb.Len() != 4 || sf.Len() != 1 {
		t.Error("Collapse mutated its inputs")
	}
}

func TestCollapseMixedLabelsFig6b(t *testing.T) {
	// Figure 6(b): ambiguous region between {d1} (frequent floor) and
	// d1d2d3d4d5 (ceiling). With frequent = subpatterns of d1d2**d5 or
	// d1d2d3, probing the halfway layer with mixed outcomes must leave the
	// correct final border.
	frequentTruth := pattern.NewSet(
		pattern.MustNew(d1, d2, d3),
		pattern.MustNew(d1, d2, et, et, d5),
	)
	probe := func(ps []pattern.Pattern) ([]float64, error) {
		out := make([]float64, len(ps))
		for i, p := range ps {
			if frequentTruth.CoveredBy(p) {
				out[i] = 1
			}
		}
		return out, nil
	}
	// The ambiguous region: all subpatterns of d1d2d3d4d5 that start with d1
	// (a superset of what Phase 2 would hand over, which is fine).
	top := pattern.MustNew(d1, d2, d3, d4, d5)
	amb := pattern.NewSet(top)
	var rec func(p pattern.Pattern)
	rec = func(p pattern.Pattern) {
		for _, q := range p.ImmediateSubpatterns() {
			if q[0] == d1 && amb.Add(q) {
				rec(q)
			}
		}
	}
	rec(top)

	res, err := Collapse(Config{MinMatch: 0.5, MemBudget: 2, Probe: probe}, pattern.NewSet(), amb)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range amb.Patterns() {
		want := frequentTruth.CoveredBy(p)
		if got := res.Frequent.Contains(p); got != want {
			t.Errorf("%v: frequent=%v, want %v", p, got, want)
		}
	}
	wantBorder := pattern.NewSet(pattern.MustNew(d1, d2, d3), pattern.MustNew(d1, d2, et, et, d5))
	if res.Border.Len() != wantBorder.Len() {
		t.Fatalf("border=%v", res.Border.Patterns())
	}
	for _, p := range wantBorder.Patterns() {
		if !res.Border.Contains(p) {
			t.Errorf("border missing %v", p)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	probe := func(ps []pattern.Pattern) ([]float64, error) { return make([]float64, len(ps)), nil }
	cases := []Config{
		{MinMatch: -0.1, MemBudget: 1, Probe: probe},
		{MinMatch: 1.1, MemBudget: 1, Probe: probe},
		{MinMatch: 0.5, MemBudget: 0, Probe: probe},
		{MinMatch: 0.5, MemBudget: 1, Probe: nil},
	}
	for i, cfg := range cases {
		if _, err := Collapse(cfg, pattern.NewSet(), chain(2)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestProbeLengthMismatchDetected(t *testing.T) {
	probe := func(ps []pattern.Pattern) ([]float64, error) { return make([]float64, len(ps)+1), nil }
	if _, err := Collapse(Config{MinMatch: 0.5, MemBudget: 1, Probe: probe}, pattern.NewSet(), chain(2)); err == nil {
		t.Error("mismatched probe output accepted")
	}
}

func TestEmptyPickDetected(t *testing.T) {
	probe := func(ps []pattern.Pattern) ([]float64, error) { return make([]float64, len(ps)), nil }
	pick := func(pending *pattern.Set, budget int) []pattern.Pattern { return nil }
	if _, err := Finalize(Config{MinMatch: 0.5, MemBudget: 1, Probe: probe}, pattern.NewSet(), chain(2), pick); err == nil {
		t.Error("empty pick accepted (would loop forever)")
	}
}

func TestSubdivisionOrder(t *testing.T) {
	got := subdivisionOrder(1, 5)
	if got[0] != 3 {
		t.Errorf("first level %d, want 3 (halfway)", got[0])
	}
	seen := make(map[int]bool)
	for _, l := range got {
		if l < 1 || l > 5 {
			t.Errorf("level %d out of range", l)
		}
		if seen[l] {
			t.Errorf("level %d repeated", l)
		}
		seen[l] = true
	}
	if len(got) != 5 {
		t.Errorf("covered %d levels, want 5", len(got))
	}
	if subdivisionOrder(3, 2) != nil {
		t.Error("inverted interval should be empty")
	}
	single := subdivisionOrder(4, 4)
	if len(single) != 1 || single[0] != 4 {
		t.Errorf("single level: %v", single)
	}
}

func TestPickHalfwayDeterministic(t *testing.T) {
	amb := chain(9)
	a := PickHalfway(amb, 4)
	b := PickHalfway(amb, 4)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("picked %d and %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("PickHalfway is not deterministic")
		}
	}
}

func TestCollapseRandomizedAgainstDirectProbe(t *testing.T) {
	// Property: for random downward-closed "truth" sets over random ambiguous
	// regions, Collapse recovers exactly truth ∩ region for any budget.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		// Random region: subpatterns of a random 6-pattern.
		top := make(pattern.Pattern, 6)
		for i := range top {
			top[i] = pattern.Symbol(rng.Intn(4))
		}
		region := pattern.NewSet(top)
		var rec func(p pattern.Pattern)
		rec = func(p pattern.Pattern) {
			for _, q := range p.ImmediateSubpatterns() {
				if region.Add(q) {
					rec(q)
				}
			}
		}
		rec(top)

		// Random monotone truth: frequent iff subpattern of a random border.
		members := region.Patterns()
		truthBorder := pattern.NewSet()
		for i := 0; i < 2; i++ {
			truthBorder.Add(members[rng.Intn(len(members))])
		}
		probe := func(ps []pattern.Pattern) ([]float64, error) {
			out := make([]float64, len(ps))
			for i, p := range ps {
				if truthBorder.CoveredBy(p) {
					out[i] = 1
				}
			}
			return out, nil
		}
		budget := 1 + rng.Intn(6)
		res, err := Collapse(Config{MinMatch: 0.5, MemBudget: budget, Probe: probe}, pattern.NewSet(), region)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range members {
			want := truthBorder.CoveredBy(p)
			if got := res.Frequent.Contains(p); got != want {
				t.Fatalf("trial %d budget %d: %v frequent=%v want %v", trial, budget, p, got, want)
			}
		}
	}
}

func TestCollapseScansNeverExceedPatternCount(t *testing.T) {
	for budget := 1; budget <= 4; budget++ {
		oracle := &levelOracle{cutoff: 2}
		res, err := Collapse(Config{MinMatch: 0.5, MemBudget: budget, Probe: oracle.probe}, pattern.NewSet(), chain(8))
		if err != nil {
			t.Fatal(err)
		}
		if res.Scans > 8 {
			t.Errorf("budget=%d: %d scans for 8 patterns", budget, res.Scans)
		}
		if res.Probed > 8 {
			t.Errorf("budget=%d: probed %d of 8", budget, res.Probed)
		}
	}
}

func ExampleCollapse() {
	// Resolve the Figure 6(a) chain with the truth "frequent up to level 2".
	oracle := &levelOracle{cutoff: 2}
	res, _ := Collapse(Config{MinMatch: 0.5, MemBudget: 1, Probe: oracle.probe}, pattern.NewSet(), chain(5))
	fmt.Println("frequent:", res.Frequent.Len(), "scans:", res.Scans)
	fmt.Println("border:", res.Border.Patterns()[0])
	// Output:
	// frequent: 2 scans: 2
	// border: d1 d2
}
