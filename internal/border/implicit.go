package border

import (
	"fmt"

	"repro/internal/pattern"
)

// CollapseImplicit is the paper-verbatim form of Algorithm 4.3: the
// ambiguous region is never materialized. It is described only by its two
// embracing borders — the lower border FQT (sample-frequent patterns, whose
// downward closure is accepted) and the upper border INFQT (the maximal
// ambiguous patterns) — and the probe layers are *generated* with Algorithm
// 4.4's Halfway construction (pattern.HalfwayLayer), halfway first, then
// quarterway, and so on, until the memory budget fills. Exact probe results
// collapse the borders: frequent probes advance the lower border, infrequent
// probes become exclusions that pull the ceiling down.
//
// Use this form when Phase 2's ambiguous region is too large to hold as an
// explicit set; with an explicit region, Collapse produces identical
// borders (the tests assert it) with simpler bookkeeping.
//
// Contract: lower must contain, in addition to the frequent border, every
// frequent 1-pattern — Algorithm 4.4 generates a layer only between a
// lower element and a ceiling element it is a subpattern of, so every
// region member needs a generator beneath it (its single symbols qualify,
// and they are exactly labeled by Phase 1).
//
// The returned Result's Frequent set holds only the region's *resolved
// members that were probed or border elements* plus the lower border's
// elements — the full frequent set is the downward closure of Border, which
// is implicit by design. Use Closure to materialize it if needed.
func CollapseImplicit(cfg Config, lower, upper *pattern.Set) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Frequent: lower.Clone(), // grows with confirmed probes
		Exact:    make(map[string]float64),
	}
	// confirmed: patterns known frequent (its downward closure is frequent),
	// kept border-pruned for fast coverage tests. generators additionally
	// retains every confirmed pattern (including the 1-pattern floor):
	// halfway generation needs a generator beneath every region member, and
	// border-pruning would drop low-level generators once larger patterns
	// are confirmed, leaving low-level members unreachable.
	confirmed := lower.Clone()
	generators := lower.Clone()
	// excluded: patterns known infrequent (their upward closure is out).
	excluded := pattern.NewSet()
	// ceiling: current upper border of the possibly-frequent region.
	ceiling := upper.Clone()

	// ambiguous membership: subpattern of some ceiling element, not covered
	// by a confirmed element, not a superpattern of an excluded element.
	isAmbiguous := func(p pattern.Pattern) bool {
		if confirmed.CoveredBy(p) {
			return false
		}
		if coversAny(excluded, p) {
			return false
		}
		return ceiling.CoveredBy(p)
	}

	// Each non-empty batch resolves at least one fresh region member (the
	// seen/isAmbiguous filters guarantee it), so the loop terminates after
	// at most |region| probes; an empty batch means nothing ambiguous is
	// generable and the region is resolved.
	for {
		if err := cfg.interrupted(); err != nil {
			return nil, err
		}
		// Generate probe layers between the confirmed border and the
		// ceiling: halfway first, then recursive halves, until the budget
		// fills (Algorithm 4.3's Layer[j] loop).
		batch := make([]pattern.Pattern, 0, cfg.MemBudget)
		seen := pattern.NewSet()
		addLayer := func(layer *pattern.Set) {
			for _, p := range layer.Patterns() {
				if len(batch) >= cfg.MemBudget {
					return
				}
				if seen.Contains(p) || !isAmbiguous(p) {
					continue
				}
				seen.Add(p)
				batch = append(batch, p)
			}
		}
		// Layer generation counts only still-ambiguous patterns toward the
		// budget, so resolved patterns cannot shadow unresolved siblings.
		fresh := func(p pattern.Pattern) bool {
			return !seen.Contains(p) && isAmbiguous(p)
		}
		type span struct{ lo, hi *pattern.Set }
		queue := []span{{generators, ceiling}}
		for len(queue) > 0 && len(batch) < cfg.MemBudget {
			s := queue[0]
			queue = queue[1:]
			layer := pattern.HalfwayLayerFiltered(s.lo, s.hi, cfg.MemBudget-len(batch), fresh)
			// The recursion descends through the (bounded) unfiltered layer;
			// the cap only delays coverage to later rounds, where the
			// top-level span regenerates with a fresh filter.
			full := pattern.HalfwayLayer(s.lo, s.hi, 4096)
			addLayer(layer)
			if full.Len() > 0 {
				queue = append(queue, span{s.lo, full}, span{full, s.hi})
			}
		}
		// The halfway construction yields nothing for adjacent levels;
		// finish by probing the remaining ambiguous ceiling and the
		// immediate extensions above the confirmed border.
		if len(batch) < cfg.MemBudget {
			addLayer(ceiling)
		}
		if len(batch) == 0 {
			// Nothing ambiguous is generable: the ceiling's members are all
			// resolved; remaining gaps are single-level and were covered by
			// the ceiling probe above.
			break
		}

		values, err := cfg.Probe(batch)
		if err != nil {
			return nil, err
		}
		if len(values) != len(batch) {
			return nil, fmt.Errorf("border: probe returned %d values for %d patterns", len(values), len(batch))
		}
		res.Scans++
		res.Probed += len(batch)
		cfg.Metrics.ProbeScan(len(batch))
		for i, p := range batch {
			cfg.Metrics.ProbeLayer(p.K())
			res.Exact[p.Key()] = values[i]
			if values[i] >= cfg.MinMatch {
				confirmed.Add(p)
				generators.Add(p)
				res.Frequent.Add(p)
			} else {
				excluded.Add(p)
				// Pull the ceiling below the exclusion: ceiling elements at
				// or above p are replaced by their maximal subpatterns that
				// avoid p. Handled lazily through isAmbiguous; the stored
				// ceiling set stays as the original geometry bound.
			}
		}
		// Re-tighten the stored borders for faster coverage tests.
		confirmed = pattern.Border(confirmed)
	}
	res.Border = pattern.Border(res.Frequent)
	// The closure is not filtered by exclusions: a sample-accepted border
	// element keeps its whole downward closure even if a probe contradicted
	// one of its subpatterns (a confidence-δ event), matching Collapse's
	// treatment of sample-frequent patterns.
	res.Frequent = Closure(res.Border, nil)
	return res, nil
}

// coversAny reports whether p is a superpattern of some member of s.
func coversAny(s *pattern.Set, p pattern.Pattern) bool {
	found := false
	s.ForEach(func(q pattern.Pattern) bool {
		if q.IsSubpatternOf(p) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Closure materializes the downward closure of a border (every subpattern
// of its members, by repeated immediate-subpattern expansion), excluding
// nothing unless excluded is non-nil (members of excluded's upward closure
// are skipped — they cannot occur for a true Apriori border but guard
// against inconsistent inputs).
func Closure(border *pattern.Set, excluded *pattern.Set) *pattern.Set {
	out := pattern.NewSet()
	var queue []pattern.Pattern
	for _, p := range border.Patterns() {
		if out.Add(p) {
			queue = append(queue, p)
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, sub := range p.ImmediateSubpatterns() {
			if excluded != nil && coversAny(excluded, sub) {
				continue
			}
			if out.Add(sub) {
				queue = append(queue, sub)
			}
		}
	}
	return out
}
