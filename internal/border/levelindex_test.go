package border

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

// naiveFinalize replicates the pre-index probe-and-propagate loop: identical
// pick order and probe batches, but propagation rescans the entire pending
// set for every probe. The level-indexed loop must be observationally
// identical to it — same frequent set, same exact map, same scan count.
func naiveFinalize(cfg Config, sampleFrequent, ambiguous *pattern.Set) (*Result, error) {
	st := NewState(sampleFrequent, ambiguous)
	for st.Pending.Len() > 0 {
		batch := PickHalfway(st.Pending, cfg.MemBudget)
		values, err := cfg.Probe(batch)
		if err != nil {
			return nil, err
		}
		st.Scans++
		st.Probed += len(batch)
		for i, p := range batch {
			st.Exact[p.Key()] = values[i]
			st.Pending.Remove(p)
			var hits []pattern.Pattern
			if values[i] >= cfg.MinMatch {
				st.Frequent.Add(p)
				st.Pending.ForEach(func(q pattern.Pattern) bool {
					if q.IsSubpatternOf(p) {
						hits = append(hits, q)
					}
					return true
				})
				for _, q := range hits {
					st.Pending.Remove(q)
					st.Frequent.Add(q)
				}
			} else {
				st.Pending.ForEach(func(q pattern.Pattern) bool {
					if p.IsSubpatternOf(q) {
						hits = append(hits, q)
					}
					return true
				})
				for _, q := range hits {
					st.Pending.Remove(q)
				}
			}
		}
	}
	res := &Result{Frequent: st.Frequent, Exact: st.Exact, Scans: st.Scans, Probed: st.Probed}
	res.Border = pattern.Border(res.Frequent)
	return res, nil
}

// wideRegion builds the downward closure of count random top patterns of the
// given length — a broad ambiguous region spanning many lattice levels.
func wideRegion(rng *rand.Rand, count, length, symbols int) *pattern.Set {
	region := pattern.NewSet()
	var rec func(p pattern.Pattern)
	rec = func(p pattern.Pattern) {
		for _, q := range p.ImmediateSubpatterns() {
			if region.Add(q) {
				rec(q)
			}
		}
	}
	for i := 0; i < count; i++ {
		top := make(pattern.Pattern, length)
		for j := range top {
			top[j] = pattern.Symbol(rng.Intn(symbols))
		}
		if region.Add(top) {
			rec(top)
		}
	}
	return region
}

// TestLevelIndexPropagationMatchesNaive: the level-indexed Apriori
// propagation must yield byte-for-byte the frequent set, exact map, and scan
// count of the full-rescan propagation, across random regions, truths, and
// budgets.
func TestLevelIndexPropagationMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		region := wideRegion(rng, 2, 6, 4)
		members := region.Patterns()
		truthBorder := pattern.NewSet()
		for i := 0; i < 2; i++ {
			truthBorder.Add(members[rng.Intn(len(members))])
		}
		probe := func(ps []pattern.Pattern) ([]float64, error) {
			out := make([]float64, len(ps))
			for i, p := range ps {
				if truthBorder.CoveredBy(p) {
					out[i] = 1
				}
			}
			return out, nil
		}
		budget := 1 + rng.Intn(8)
		cfg := Config{MinMatch: 0.5, MemBudget: budget, Probe: probe}
		got, err := Collapse(cfg, pattern.NewSet(), region)
		if err != nil {
			t.Fatal(err)
		}
		want, err := naiveFinalize(cfg, pattern.NewSet(), region)
		if err != nil {
			t.Fatal(err)
		}
		if got.Scans != want.Scans || got.Probed != want.Probed {
			t.Fatalf("trial %d budget %d: scans/probed %d/%d, naive %d/%d",
				trial, budget, got.Scans, got.Probed, want.Scans, want.Probed)
		}
		if got.Frequent.Len() != want.Frequent.Len() {
			t.Fatalf("trial %d: frequent %d vs naive %d", trial, got.Frequent.Len(), want.Frequent.Len())
		}
		want.Frequent.ForEach(func(p pattern.Pattern) bool {
			if !got.Frequent.Contains(p) {
				t.Fatalf("trial %d: naive frequent %v missing from indexed result", trial, p)
			}
			return true
		})
		if len(got.Exact) != len(want.Exact) {
			t.Fatalf("trial %d: exact map size %d vs %d", trial, len(got.Exact), len(want.Exact))
		}
		for k, v := range want.Exact {
			if gv, ok := got.Exact[k]; !ok || gv != v {
				t.Fatalf("trial %d: exact[%q] = %v, naive %v", trial, k, gv, v)
			}
		}
	}
}

// BenchmarkFinalizeWideRegion measures the probe-and-propagate loop on a
// wide multi-level ambiguous region — the shape where propagation cost
// dominates (probes here are free, so the loop body is all that is timed).
func BenchmarkFinalizeWideRegion(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	region := wideRegion(rng, 6, 8, 5)
	members := region.Patterns()
	truthBorder := pattern.NewSet()
	for i := 0; i < 4; i++ {
		truthBorder.Add(members[rng.Intn(len(members))])
	}
	probe := func(ps []pattern.Pattern) ([]float64, error) {
		out := make([]float64, len(ps))
		for i, p := range ps {
			if truthBorder.CoveredBy(p) {
				out[i] = 1
			}
		}
		return out, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Collapse(Config{MinMatch: 0.5, MemBudget: 64, Probe: probe}, pattern.NewSet(), region.Clone())
		if err != nil {
			b.Fatal(err)
		}
	}
}
