// Package stream maintains the three-phase mining pipeline's state across
// batches of an append-only sequence log (seqdb.AppendDB), so a growing
// database is re-mined incrementally instead of from scratch.
//
// What is maintained between batches mirrors the pipeline's phases:
//
//   - Phase 1: a long-lived match.SymbolAccumulator extends the per-symbol
//     match sums with each appended sequence, and a reservoir sample of
//     SampleSize sequences is kept over the live window. Reservoir draws are
//     stateless — each offer's draw is derived from (Seed, window-relative
//     index) alone — so a restored or rebuilt stream reproduces the exact
//     sample the uninterrupted stream holds, with no RNG replay.
//   - Phase 2: per-pattern sample match sums for every candidate the last
//     mine evaluated are extended sequence by sequence, in sample order, so
//     they stay bit-identical to a fresh in-order scan of the sample. On each
//     batch the unclamped Chernoff labels are recomputed from the maintained
//     sums; only when some label changes (a border shift), the sample was
//     perturbed by a reservoir replacement, or the candidate space was
//     truncated does the stream fall back to a scoped re-mine of the
//     in-memory sample — no database scan either way.
//   - Phase 3: exact database match sums of previously probed patterns are
//     extended with each appended sequence, so a pattern probed in an earlier
//     batch is re-probed for free — its Chernoff interval is resolved from
//     the cached sum without a scan. Only never-probed patterns cost a pass
//     over the live window. Probe order never changes the final frequent set
//     (exact values plus anti-monotone Apriori propagation), so serving
//     cached probes first is purely an execution layout.
//
// Sliding-window expiry (Config.Window, or an external ExpireBefore on the
// log) moves the window start; the stream detects the shift and rebuilds its
// Phase 1 state from the live window. Because reservoir draws are keyed by
// window-relative index, the rebuilt state is identical to a fresh stream
// over a database holding only the live window.
//
// Equivalence: with SampleSize >= the window size and the naive Phase 2
// kernel, every Advance yields results bit-identical to core.Mine over the
// consumed window. With the incremental kernel, values agree within float64
// sum reassociation (the kernels' documented relationship) and labels agree
// away from exact Chernoff boundaries.
package stream

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/border"
	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// Kernel selects the sample-scoring kernel for the scoped re-mine, mirroring
// core.Phase2Kernel.
type Kernel int

const (
	// KernelIncremental scores re-mine levels with the prefix-extension
	// kernel sharded across Workers (the default, matching core.Mine's).
	KernelIncremental Kernel = iota
	// KernelNaive recompiles every candidate against the whole sample —
	// slower, and the bit-exactness reference for the maintained sums.
	KernelNaive
)

// Config parameterizes a stream. The mining parameters carry the same
// semantics as core.Config's.
type Config struct {
	// C is the compatibility source (required).
	C compat.Source
	// MinMatch is the significance threshold (required, in (0,1]).
	MinMatch float64
	// Delta is the Chernoff failure probability. Default 1e-4.
	Delta float64
	// SampleSize is the reservoir capacity (required, >= 1). With
	// SampleSize >= the live window the sample is the whole window in append
	// order — exactly the sample a batch run with the same cap draws.
	SampleSize int
	// MaxLen bounds total pattern length (required, >= 1).
	MaxLen int
	// MaxGap bounds runs of eternal symbols inside a pattern.
	MaxGap int
	// MaxCandidatesPerLevel caps each re-mine level (0 = unlimited). A
	// truncated mine disables the incremental skip (truncation depends on
	// value ordering, not just labels), forcing a re-mine every batch.
	MaxCandidatesPerLevel int
	// MemBudget is the number of pattern counters a probe round may hold.
	// Default 10000.
	MemBudget int
	// Workers shards the re-mine's incremental kernel (0/1 sequential,
	// negative = GOMAXPROCS).
	Workers int
	// Kernel selects the re-mine kernel. Default KernelIncremental.
	Kernel Kernel
	// CacheBudget bounds the incremental kernel's prefix cache in bytes
	// (0 = match.DefaultCacheBudget).
	CacheBudget int64
	// Seed drives the stateless reservoir draws (required for
	// reproducibility; any fixed value works).
	Seed int64
	// Window, when > 0, keeps at most that many live sequences: Advance
	// expires older sequences from the log (requires a writable AppendDB)
	// before consuming the batch. 0 leaves expiry to the caller.
	Window int
	// Metrics, when non-nil, receives streaming telemetry (batches, appended
	// and expired sequences, re-probes avoided, border shifts, re-mines) plus
	// the probe-loop counters. Nil disables collection.
	Metrics *telemetry.Metrics
}

func (c *Config) setDefaults() {
	if c.Delta == 0 {
		c.Delta = 1e-4
	}
	if c.MemBudget == 0 {
		c.MemBudget = 10000
	}
}

func (c *Config) validate() error {
	if c.C == nil {
		return fmt.Errorf("stream: compatibility source is required")
	}
	if c.MinMatch <= 0 || c.MinMatch > 1 {
		return fmt.Errorf("stream: MinMatch %v outside (0,1]", c.MinMatch)
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("stream: Delta %v outside (0,1)", c.Delta)
	}
	if c.SampleSize < 1 {
		return fmt.Errorf("stream: SampleSize %d < 1", c.SampleSize)
	}
	if c.MaxLen < 1 {
		return fmt.Errorf("stream: MaxLen %d < 1", c.MaxLen)
	}
	if c.MaxGap < 0 || c.MaxCandidatesPerLevel < 0 || c.Window < 0 {
		return fmt.Errorf("stream: negative bound")
	}
	if c.MemBudget < 1 {
		return fmt.Errorf("stream: MemBudget %d < 1", c.MemBudget)
	}
	if c.Kernel < KernelIncremental || c.Kernel > KernelNaive {
		return fmt.Errorf("stream: unknown kernel %d", c.Kernel)
	}
	return nil
}

// Result reports one Advance: the finalized frequent set over the consumed
// window plus what the incremental machinery did to get there. Phase2 is the
// stream's live mining state — it is updated in place by later Advances, so
// callers retaining it across batches must copy what they need.
type Result struct {
	// Frequent is the exact frequent set over the consumed window and Border
	// its border (FQT).
	Frequent *pattern.Set
	Border   *pattern.Set
	// SymbolMatch holds the maintained exact per-symbol matches.
	SymbolMatch []float64
	// SampleSize is the current reservoir occupancy.
	SampleSize int
	// Phase2 is the current sample-mining state (values and spreads are
	// refreshed in place on skipped batches). Nil for an empty window.
	Phase2 *miner.Result
	// Phase3 reports the probe loop (nil when nothing was ambiguous).
	Phase3 *border.Result
	// Appended and Expired count the sequences consumed and dropped by this
	// batch; Total is the absolute id past the last consumed sequence.
	Appended, Expired, Total int
	// Remined reports that this batch fell back to a scoped re-mine of the
	// sample; BorderShifted that a maintained label change forced it.
	Remined       bool
	BorderShifted bool
	// ReprobesAvoided counts ambiguous patterns resolved from cached exact
	// sums without a scan; Scans counts the window passes probing cost.
	ReprobesAvoided int
	Scans           int
}

// Stream is the incremental mining state over one append log. Not safe for
// concurrent use; one Advance at a time.
type Stream struct {
	db  *seqdb.AppendDB
	cfg Config

	cursor      int // absolute id of the next unconsumed sequence
	windowStart int // absolute id of the window the state was built over

	acc    *match.SymbolAccumulator
	sample [][]pattern.Symbol

	symbolMatch []float64
	lastMine    *miner.Result
	evaluated   []pattern.Pattern  // last mine's candidates, key-sorted
	sampleSums  map[string]float64 // straight sample match sums per candidate
	prevRaw     map[string]chernoff.Label
	exactSums   map[string]float64 // straight window match sums per probed pattern
	probed      []pattern.Pattern  // exactSums keys as patterns, key-sorted
	dirty       bool               // sample perturbed: maintained sums invalid

	grew int // sample members appended (at the tail) by the current batch
}

// New builds a stream over db. No data is consumed until Advance.
func New(db *seqdb.AppendDB, cfg Config) (*Stream, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Stream{
		db:          db,
		cfg:         cfg,
		cursor:      db.Start(),
		windowStart: db.Start(),
		acc:         match.NewSymbolAccumulator(cfg.C),
		exactSums:   make(map[string]float64),
		dirty:       true,
	}
	return s, nil
}

// State is the stream's serializable progress — everything beyond the config
// and the log itself needed to continue bit-identically after a restart. The
// sample-mining result travels separately (checkpoint's Phase2State already
// serializes a miner.Result).
type State struct {
	// Cursor and WindowStart delimit the consumed window [WindowStart, Cursor).
	Cursor, WindowStart int
	// Sample is the reservoir contents in maintained order.
	Sample [][]pattern.Symbol
	// SymbolSums are the accumulator's raw per-symbol sums.
	SymbolSums []float64
	// SampleSums and ExactSums are the maintained per-pattern sums.
	SampleSums map[string]float64
	ExactSums  map[string]float64
}

// State captures the stream's current progress. Slices and maps are copies.
func (s *Stream) State() *State {
	st := &State{
		Cursor:      s.cursor,
		WindowStart: s.windowStart,
		Sample:      make([][]pattern.Symbol, len(s.sample)),
		SymbolSums:  s.acc.Sums(),
		SampleSums:  make(map[string]float64, len(s.sampleSums)),
		ExactSums:   make(map[string]float64, len(s.exactSums)),
	}
	for i, seq := range s.sample {
		st.Sample[i] = append([]pattern.Symbol(nil), seq...)
	}
	for k, v := range s.sampleSums {
		st.SampleSums[k] = v
	}
	for k, v := range s.exactSums {
		st.ExactSums[k] = v
	}
	return st
}

// LastMine exposes the current sample-mining state for checkpointing (nil
// before the first mine).
func (s *Stream) LastMine() *miner.Result { return s.lastMine }

// Cursor returns the absolute id of the next unconsumed sequence.
func (s *Stream) Cursor() int { return s.cursor }

// WindowStart returns the absolute id the consumed window starts at.
func (s *Stream) WindowStart() int { return s.windowStart }

// Restore rebuilds a stream from a captured State and the mine that was live
// when it was captured (nil forces a re-mine on the next Advance). The state
// must have been captured under the same Config and log.
func Restore(db *seqdb.AppendDB, cfg Config, st *State, mine *miner.Result) (*Stream, error) {
	s, err := New(db, cfg)
	if err != nil {
		return nil, err
	}
	if st.Cursor < st.WindowStart || len(st.SymbolSums) != cfg.C.Size() {
		return nil, fmt.Errorf("stream: inconsistent state (cursor %d, window start %d, %d symbol sums)",
			st.Cursor, st.WindowStart, len(st.SymbolSums))
	}
	if want := minInt(cfg.SampleSize, st.Cursor-st.WindowStart); len(st.Sample) != want {
		return nil, fmt.Errorf("stream: state carries %d sample sequences, want %d", len(st.Sample), want)
	}
	s.cursor, s.windowStart = st.Cursor, st.WindowStart
	if err := s.acc.SetSums(st.SymbolSums); err != nil {
		return nil, err
	}
	s.sample = make([][]pattern.Symbol, len(st.Sample))
	for i, seq := range st.Sample {
		s.sample[i] = append([]pattern.Symbol(nil), seq...)
	}
	s.symbolMatch = s.acc.Matches(s.cursor - s.windowStart)
	for k, v := range st.ExactSums {
		s.exactSums[k] = v
		p, err := pattern.ParseKey(k)
		if err != nil {
			return nil, fmt.Errorf("stream: exact-sum key %q: %w", k, err)
		}
		s.probed = append(s.probed, p)
	}
	sortPatterns(s.probed)
	if mine != nil {
		s.lastMine = mine
		if err := s.adoptSums(st.SampleSums); err != nil {
			return nil, err
		}
		s.dirty = false
	}
	return s, nil
}

// adoptSums installs restored sample sums for the restored mine's candidates
// and recomputes the raw-label baseline from them.
func (s *Stream) adoptSums(sums map[string]float64) error {
	s.evaluated = s.evaluated[:0]
	s.sampleSums = make(map[string]float64, len(s.lastMine.Values))
	for key := range s.lastMine.Values {
		p, err := pattern.ParseKey(key)
		if err != nil {
			return fmt.Errorf("stream: candidate key %q: %w", key, err)
		}
		v, ok := sums[key]
		if !ok {
			return fmt.Errorf("stream: restored state misses sample sum for %q", key)
		}
		s.evaluated = append(s.evaluated, p)
		s.sampleSums[key] = v
	}
	sortPatterns(s.evaluated)
	raw, err := s.rawLabels()
	if err != nil {
		return err
	}
	s.prevRaw = raw
	return nil
}

// Advance consumes every sequence appended since the last call (applying the
// configured sliding window first), updates the maintained phase state, and
// returns the finalized frequent set over the consumed window. An Advance
// with nothing new and no border shift costs no window scan at all.
func (s *Stream) Advance(ctx context.Context) (*Result, error) {
	res := &Result{}
	if s.cfg.Window > 0 {
		if total := s.db.Total(); total-s.db.Start() > s.cfg.Window {
			if err := s.db.ExpireBefore(total - s.cfg.Window); err != nil {
				return nil, err
			}
		}
	}
	if err := s.ingest(ctx, res); err != nil {
		return nil, err
	}
	n := s.cursor - s.windowStart
	res.Total = s.cursor
	s.symbolMatch = s.acc.Matches(n)
	res.SymbolMatch = s.symbolMatch
	res.SampleSize = len(s.sample)
	if n == 0 {
		// An empty window mines nothing; the frequent set is trivially empty.
		s.lastMine, s.evaluated, s.prevRaw = nil, nil, nil
		s.sampleSums = nil
		s.dirty = true
		res.Frequent = pattern.NewSet()
		res.Border = pattern.NewSet()
		s.cfg.Metrics.StreamBatch(res.Appended, res.Expired, false, false)
		return res, nil
	}

	// Phase 2: skip the re-mine when the maintained labels prove the border
	// did not move; otherwise re-mine the in-memory sample.
	need := s.dirty || s.lastMine == nil || s.lastMine.Truncated
	if !need {
		raw, err := s.rawLabels()
		if err != nil {
			return nil, err
		}
		if !sameLabels(raw, s.prevRaw) {
			res.BorderShifted = true
			need = true
		}
	}
	if need {
		if err := s.remine(ctx); err != nil {
			return nil, err
		}
		res.Remined = true
	} else {
		s.refreshMine()
	}
	res.Phase2 = s.lastMine

	// Phase 3: finalize the border, serving cached exact sums first.
	if s.lastMine.Ambiguous.Len() == 0 {
		res.Frequent = s.lastMine.Frequent.Clone()
		res.Border = pattern.Border(res.Frequent)
	} else {
		scans0 := 0
		probeCfg := border.Config{
			MinMatch:  s.cfg.MinMatch,
			MemBudget: s.cfg.MemBudget,
			Probe:     s.hybridProbe(ctx, res, &scans0),
			Ctx:       ctx,
			Metrics:   s.cfg.Metrics,
		}
		p3, err := border.FinalizeState(probeCfg, border.NewState(s.lastMine.Frequent, s.lastMine.Ambiguous), s.pickCachedFirst)
		if err != nil {
			return nil, err
		}
		res.Phase3 = p3
		res.Frequent = p3.Frequent
		res.Border = p3.Border
		res.Scans = scans0
	}
	s.cfg.Metrics.StreamBatch(res.Appended, res.Expired, res.BorderShifted, res.Remined)
	s.cfg.Metrics.StreamReprobesAvoided(res.ReprobesAvoided)
	return res, nil
}

// ingest consumes appended sequences — or, when the window start moved,
// rebuilds the whole Phase 1 state from the live window — extending the
// maintained sums along the way.
func (s *Stream) ingest(ctx context.Context, res *Result) error {
	s.grew = 0
	if start := s.db.Start(); start != s.windowStart {
		// The window moved (sliding-window expiry, here or externally):
		// rebuild from the live window. Stateless draws keyed by the new
		// window-relative indices make this identical to a fresh stream over
		// a log holding only the live window.
		res.Expired = start - s.windowStart
		oldCursor := s.cursor
		s.windowStart = start
		s.acc = match.NewSymbolAccumulator(s.cfg.C)
		s.sample = s.sample[:0]
		s.exactSums = make(map[string]float64)
		s.probed = s.probed[:0]
		s.dirty = true
		delivered := 0
		err := s.db.ScanContext(ctx, func(id int, seq []pattern.Symbol) error {
			s.acc.Observe(seq)
			s.offer(id, seq)
			delivered++
			return nil
		})
		if err != nil {
			return err
		}
		s.cursor = s.windowStart + delivered
		if s.cursor > oldCursor {
			res.Appended = s.cursor - oldCursor
		}
		return nil
	}

	var appended [][]pattern.Symbol
	cursor, err := s.db.ScanSince(ctx, s.cursor, func(abs int, seq []pattern.Symbol) error {
		s.acc.Observe(seq)
		s.offer(abs-s.windowStart, seq)
		appended = append(appended, append([]pattern.Symbol(nil), seq...))
		return nil
	})
	if err != nil {
		return err
	}
	s.cursor = cursor
	res.Appended = len(appended)
	if len(appended) == 0 {
		return nil
	}

	// Extend the maintained sums, in arrival order, so they stay
	// bit-identical to a from-scratch in-order scan.
	if s.lastMine != nil && !s.dirty && s.grew > 0 {
		if err := s.extendSums(s.sampleSums, s.evaluated, s.sample[len(s.sample)-s.grew:]); err != nil {
			return err
		}
	}
	if len(s.probed) > 0 {
		if err := s.extendSums(s.exactSums, s.probed, appended); err != nil {
			return err
		}
	}
	return nil
}

// offer presents the sequence with window-relative index rel to the
// reservoir (Algorithm R with stateless per-index draws).
func (s *Stream) offer(rel int, seq []pattern.Symbol) {
	if rel < s.cfg.SampleSize {
		s.sample = append(s.sample, append([]pattern.Symbol(nil), seq...))
		s.grew++
		return
	}
	if j := drawIndex(s.cfg.Seed, rel); j < s.cfg.SampleSize {
		s.sample[j] = append([]pattern.Symbol(nil), seq...)
		s.dirty = true // a member was replaced: maintained sample sums are stale
	}
}

// drawIndex is the stateless Algorithm R draw for the rel-th window sequence:
// uniform on [0, rel], a pure function of (seed, rel), so any replay of the
// window reproduces the same reservoir.
func drawIndex(seed int64, rel int) int {
	rng := rand.New(rand.NewSource(seed ^ int64(uint64(rel+1)*0x9E3779B97F4A7C15)))
	return rng.Intn(rel + 1)
}

// extendSums scores seqs against ps (key-sorted) and extends each pattern's
// running sum. The running totals are loaded first and each sequence's match
// is added in arrival order, continuing the exact left-to-right addition a
// from-scratch in-order scan performs (adding a separately-summed chunk
// would reassociate the floats and drift from the batch pipeline by ulps).
func (s *Stream) extendSums(sums map[string]float64, ps []pattern.Pattern, seqs [][]pattern.Symbol) error {
	set, err := match.CompileSet(s.cfg.C, ps)
	if err != nil {
		return err
	}
	buf := make([]float64, len(ps))
	for i, p := range ps {
		buf[i] = sums[p.Key()]
	}
	for _, seq := range seqs {
		set.ObserveInto(seq, buf)
	}
	for i, p := range ps {
		sums[p.Key()] = buf[i]
	}
	return nil
}

// rawLabels computes the unclamped classification of every maintained
// candidate from the current sums: exact for 1-patterns (Phase 1's symbol
// matches carry no sampling uncertainty), Chernoff with the restricted
// spread otherwise. If none of these change, a fresh mine would regenerate
// the same candidate space with the same labels, so the re-mine is skipped.
func (s *Stream) rawLabels() (map[string]chernoff.Label, error) {
	cls, err := chernoff.NewClassifier(s.cfg.MinMatch, s.cfg.Delta, len(s.sample))
	if err != nil {
		return nil, err
	}
	n := float64(len(s.sample))
	out := make(map[string]chernoff.Label, len(s.evaluated))
	for _, p := range s.evaluated {
		key := p.Key()
		if p.K() == 1 {
			if s.symbolMatch[p[0]] >= s.cfg.MinMatch {
				out[key] = chernoff.Frequent
			} else {
				out[key] = chernoff.Infrequent
			}
			continue
		}
		out[key] = cls.Classify(s.sampleSums[key]/n, chernoff.RestrictedSpread(p, s.symbolMatch))
	}
	return out, nil
}

func sameLabels(a, b map[string]chernoff.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// remine reruns the sample classification (Phase 2) over the maintained
// sample — the scoped fallback when the incremental path cannot prove the
// border stayed put. It then rebuilds the maintained sums and the raw-label
// baseline from the fresh candidate space.
func (s *Stream) remine(ctx context.Context) error {
	opts := miner.Options{
		MaxLen:                s.cfg.MaxLen,
		MaxGap:                s.cfg.MaxGap,
		MaxCandidatesPerLevel: s.cfg.MaxCandidatesPerLevel,
		Metrics:               s.cfg.Metrics,
	}
	valuer := miner.MatchSampleValuer(s.cfg.C, s.sample)
	if s.cfg.Kernel == KernelIncremental {
		var inc *match.Incremental
		valuer, inc = miner.IncrementalSampleValuer(s.cfg.C, s.sample, miner.IncrementalConfig{
			Workers: s.cfg.Workers,
			Budget:  s.cfg.CacheBudget,
			Metrics: s.cfg.Metrics,
		})
		defer inc.Release()
	}
	r, err := miner.SampleChernoffContext(ctx, s.cfg.C.Size(), valuer,
		s.symbolMatch, s.cfg.MinMatch, s.cfg.Delta, len(s.sample), opts)
	if err != nil {
		return err
	}
	s.lastMine = r
	s.evaluated = s.evaluated[:0]
	for key := range r.Values {
		p, err := pattern.ParseKey(key)
		if err != nil {
			return fmt.Errorf("stream: candidate key %q: %w", key, err)
		}
		s.evaluated = append(s.evaluated, p)
	}
	sortPatterns(s.evaluated)
	// Rebuild the sample sums with one in-memory pass, so the maintained sums
	// (and every label derived from them later) are anchored to a straight
	// in-order accumulation regardless of the re-mine kernel.
	s.sampleSums = make(map[string]float64, len(s.evaluated))
	if err := s.extendSums(s.sampleSums, s.evaluated, s.sample); err != nil {
		return err
	}
	raw, err := s.rawLabels()
	if err != nil {
		return err
	}
	s.prevRaw = raw
	s.dirty = false
	return nil
}

// refreshMine updates the skipped batch's values and spreads in place from
// the maintained sums — the labels, sets and borders are unchanged by
// construction (that is what the skip condition proved).
func (s *Stream) refreshMine() {
	n := float64(len(s.sample))
	for _, p := range s.evaluated {
		key := p.Key()
		s.lastMine.Values[key] = s.sampleSums[key] / n
		s.lastMine.Spreads[key] = chernoff.RestrictedSpread(p, s.symbolMatch)
	}
}

// hybridProbe is the Phase 3 valuer: patterns with cached exact sums are
// resolved without touching the database; the rest are counted in one pass
// over the consumed window and their sums cached for every later batch.
func (s *Stream) hybridProbe(ctx context.Context, res *Result, scans *int) miner.Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		n := float64(s.cursor - s.windowStart)
		out := make([]float64, len(ps))
		var miss []pattern.Pattern
		var missIdx []int
		for i, p := range ps {
			if sum, ok := s.exactSums[p.Key()]; ok {
				out[i] = sum / n
				res.ReprobesAvoided++
				continue
			}
			miss = append(miss, p)
			missIdx = append(missIdx, i)
		}
		if len(miss) == 0 {
			return out, nil
		}
		set, err := match.CompileSet(s.cfg.C, miss)
		if err != nil {
			return nil, err
		}
		// Scan exactly the consumed prefix [windowStart, cursor): sequences
		// appended after ingest belong to the next batch.
		err = s.db.ScanRangeContext(ctx, 0, s.cursor-s.windowStart, func(id int, seq []pattern.Symbol) error {
			set.Observe(seq)
			return nil
		})
		if err != nil {
			return nil, err
		}
		*scans++
		sums := set.Sums()
		for j, i := range missIdx {
			key := miss[j].Key()
			s.exactSums[key] = sums[j]
			s.probed = append(s.probed, miss[j])
			out[i] = sums[j] / n
		}
		sortPatterns(s.probed)
		return out, nil
	}
}

// pickCachedFirst drains pending patterns whose exact sums are cached before
// falling back to the halfway-layer schedule. Probe order never changes the
// final frequent set (probes are exact and propagation is anti-monotone), so
// this is purely a scan-avoidance layout.
func (s *Stream) pickCachedFirst(pending *pattern.Set, budget int) []pattern.Pattern {
	var cached []pattern.Pattern
	for _, p := range pending.Patterns() {
		if _, ok := s.exactSums[p.Key()]; ok {
			cached = append(cached, p)
			if len(cached) >= budget {
				break
			}
		}
	}
	if len(cached) > 0 {
		return cached
	}
	return border.PickHalfway(pending, budget)
}

func sortPatterns(ps []pattern.Pattern) {
	sort.Slice(ps, func(a, b int) bool { return ps[a].Key() < ps[b].Key() })
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
