package stream_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/stream"
)

// testCase is a miniature mining instance for replay-vs-batch comparison,
// generated like the oracle's differential cases but local to this package
// (the oracle imports stream, so stream's tests cannot import the oracle).
type testCase struct {
	c        *compat.Matrix
	db       [][]pattern.Symbol
	minMatch float64
	delta    float64
	maxLen   int
	maxGap   int
}

func genCase(t *testing.T, seed int64) *testCase {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := 3 + rng.Intn(3)
	var c *compat.Matrix
	switch rng.Intn(3) {
	case 0:
		c = compat.Identity(m)
	case 1:
		var err error
		if c, err = compat.UniformNoise(m, 0.1+0.3*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	default:
		dense := make([][]float64, m)
		for i := range dense {
			dense[i] = make([]float64, m)
		}
		for j := 0; j < m; j++ {
			sum := 0.0
			for i := 0; i < m; i++ {
				v := rng.Float64()
				if rng.Intn(3) == 0 {
					v = 0
				}
				dense[i][j] = v
				sum += v
			}
			if sum == 0 {
				dense[j][j] = 1
				sum = 1
			}
			for i := 0; i < m; i++ {
				dense[i][j] /= sum
			}
		}
		var err error
		if c, err = compat.New(dense); err != nil {
			t.Fatal(err)
		}
	}
	n := 6 + rng.Intn(10)
	db := make([][]pattern.Symbol, n)
	motif := make([]pattern.Symbol, 2+rng.Intn(2))
	for i := range motif {
		motif[i] = pattern.Symbol(rng.Intn(m))
	}
	for i := range db {
		l := 3 + rng.Intn(9)
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		if l >= len(motif) && rng.Float64() < 0.5 {
			copy(seq[rng.Intn(l-len(motif)+1):], motif)
		}
		db[i] = seq
	}
	return &testCase{
		c:        c,
		db:       db,
		minMatch: 0.15 + 0.45*rng.Float64(),
		delta:    []float64{1e-4, 0.05, 0.2}[rng.Intn(3)],
		maxLen:   3 + rng.Intn(2),
		maxGap:   rng.Intn(2),
	}
}

func (tc *testCase) streamConfig(kernel stream.Kernel, workers, sampleSize int) stream.Config {
	return stream.Config{
		C:          tc.c,
		MinMatch:   tc.minMatch,
		Delta:      tc.delta,
		SampleSize: sampleSize,
		MaxLen:     tc.maxLen,
		MaxGap:     tc.maxGap,
		MemBudget:  3, // small: forces multi-round border collapsing
		Workers:    workers,
		Kernel:     kernel,
		Seed:       42,
	}
}

// batchMine runs the from-scratch pipeline over db with a full-window sample
// and the given kernel — the reference every streamed prefix must match.
func batchMine(t *testing.T, tc *testCase, db [][]pattern.Symbol, kernel core.Phase2Kernel, workers, sampleSize int) *core.Result {
	t.Helper()
	res, err := core.Mine(seqdb.NewMemDB(db), tc.c, core.Config{
		MinMatch:     tc.minMatch,
		Delta:        tc.delta,
		SampleSize:   sampleSize,
		MaxLen:       tc.maxLen,
		MaxGap:       tc.maxGap,
		MemBudget:    3,
		Workers:      workers,
		Phase2Kernel: kernel,
		Rng:          rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newLog(t *testing.T) *seqdb.AppendDB {
	t.Helper()
	db, err := seqdb.CreateAppend(filepath.Join(t.TempDir(), "log.lsa"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func appendBatch(t *testing.T, db *seqdb.AppendDB, seqs [][]pattern.Symbol) {
	t.Helper()
	for _, seq := range seqs {
		if _, err := db.Append(seq); err != nil {
			t.Fatal(err)
		}
	}
}

func setKeys(s *pattern.Set) []string {
	ps := s.Patterns()
	keys := make([]string, len(ps))
	for i, p := range ps {
		keys[i] = p.Key()
	}
	return keys
}

// TestReplayMatchesBatchNaive is the strict differential: feeding the
// database in K-sequence batches with the naive kernel must reproduce the
// from-scratch pipeline bit-identically after every batch — frequent set,
// border, symbol matches, and every sample value.
func TestReplayMatchesBatchNaive(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tc := genCase(t, seed)
		for _, k := range []int{1, 2, 3, 5, len(tc.db)} {
			log := newLog(t)
			s, err := stream.New(log, tc.streamConfig(stream.KernelNaive, 0, len(tc.db)))
			if err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(tc.db); lo += k {
				hi := lo + k
				if hi > len(tc.db) {
					hi = len(tc.db)
				}
				appendBatch(t, log, tc.db[lo:hi])
				res, err := s.Advance(context.Background())
				if err != nil {
					t.Fatalf("seed %d k %d batch [%d,%d): %v", seed, k, lo, hi, err)
				}
				ref := batchMine(t, tc, tc.db[:hi], core.KernelNaive, 0, len(tc.db))
				if got, want := setKeys(res.Frequent), setKeys(ref.Frequent); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d k %d prefix %d: frequent %v, batch mine %v", seed, k, hi, got, want)
				}
				if got, want := setKeys(res.Border), setKeys(ref.Border); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d k %d prefix %d: border %v, batch mine %v", seed, k, hi, got, want)
				}
				if !reflect.DeepEqual(res.SymbolMatch, ref.SymbolMatch) {
					t.Fatalf("seed %d k %d prefix %d: symbol matches diverge\n got %v\nwant %v",
						seed, k, hi, res.SymbolMatch, ref.SymbolMatch)
				}
				for key, want := range ref.Phase2.Values {
					if got := res.Phase2.Values[key]; got != want {
						t.Fatalf("seed %d k %d prefix %d: value[%s] = %v, batch mine %v", seed, k, hi, key, got, want)
					}
				}
				if len(res.Phase2.Values) != len(ref.Phase2.Values) {
					t.Fatalf("seed %d k %d prefix %d: %d candidates, batch mine %d",
						seed, k, hi, len(res.Phase2.Values), len(ref.Phase2.Values))
				}
			}
		}
	}
}

// TestReplayMatchesBatchIncremental runs the same replay under the default
// incremental kernel and several worker counts. stream.Kernel sums are
// shard-reassociated, so values are compared at set level (the kernels'
// documented contract: classifications agree).
func TestReplayMatchesBatchIncremental(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tc := genCase(t, seed)
		for _, workers := range []int{0, 3} {
			for _, k := range []int{2, 4} {
				log := newLog(t)
				s, err := stream.New(log, tc.streamConfig(stream.KernelIncremental, workers, len(tc.db)))
				if err != nil {
					t.Fatal(err)
				}
				var res *stream.Result
				for lo := 0; lo < len(tc.db); lo += k {
					hi := lo + k
					if hi > len(tc.db) {
						hi = len(tc.db)
					}
					appendBatch(t, log, tc.db[lo:hi])
					if res, err = s.Advance(context.Background()); err != nil {
						t.Fatalf("seed %d workers %d k %d: %v", seed, workers, k, err)
					}
				}
				ref := batchMine(t, tc, tc.db, core.KernelIncremental, workers, len(tc.db))
				if got, want := setKeys(res.Frequent), setKeys(ref.Frequent); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d workers %d k %d: frequent %v, batch mine %v", seed, workers, k, got, want)
				}
				if got, want := setKeys(res.Border), setKeys(ref.Border); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d workers %d k %d: border %v, batch mine %v", seed, workers, k, got, want)
				}
			}
		}
	}
}

// TestStationarySkipsRemineAndServesCache drives a stationary two-sequence
// alternation under the identity matrix: every pattern value is exactly 0 or
// 0.5 after each even-sized batch, so the only label movement comes from the
// Chernoff interval tightening as the sample grows — which settles after the
// first batches — while the pattern [0,1] (value 0.5, threshold 0.4) stays
// ambiguous throughout. Later Advances must therefore skip the re-mine, and
// every Phase 3 after the first must resolve [0,1] from the cached exact sum
// without a window scan.
func TestStationarySkipsRemineAndServesCache(t *testing.T) {
	const batches, perBatch = 8, 2
	tc := &testCase{
		c:        compat.Identity(3),
		minMatch: 0.4,
		delta:    0.2,
		maxLen:   2,
		maxGap:   0,
	}
	a, b := []pattern.Symbol{0, 1}, []pattern.Symbol{2}
	for i := 0; i < batches; i++ {
		tc.db = append(tc.db, a, b)
	}
	log := newLog(t)
	s, err := stream.New(log, tc.streamConfig(stream.KernelNaive, 0, len(tc.db)))
	if err != nil {
		t.Fatal(err)
	}
	skips, cacheHits, probeBatches := 0, 0, 0
	for lo := 0; lo < len(tc.db); lo += perBatch {
		appendBatch(t, log, tc.db[lo:lo+perBatch])
		res, err := s.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ref := batchMine(t, tc, tc.db[:lo+perBatch], core.KernelNaive, 0, len(tc.db))
		if got, want := setKeys(res.Frequent), setKeys(ref.Frequent); !reflect.DeepEqual(got, want) {
			t.Fatalf("prefix %d: frequent %v, batch mine %v", lo+perBatch, got, want)
		}
		if lo == 0 {
			continue
		}
		if !res.Remined {
			skips++
			if res.Scans != 0 {
				t.Fatalf("prefix %d: skipped batch still scanned the window %d times", lo+perBatch, res.Scans)
			}
		}
		if res.Phase3 != nil {
			probeBatches++
			if res.ReprobesAvoided == 0 {
				t.Fatalf("prefix %d: [0,1] was probed in an earlier batch but not served from cache", lo+perBatch)
			}
			cacheHits += res.ReprobesAvoided
		}
	}
	if skips == 0 {
		t.Fatal("no later batch skipped the re-mine under stationary labels")
	}
	if probeBatches == 0 || cacheHits == 0 {
		t.Fatalf("the persistently ambiguous pattern never exercised the probe cache (batches=%d hits=%d)", probeBatches, cacheHits)
	}
}

// TestIdleAdvance: an Advance with nothing appended must be free — no
// re-mine, no window scan, unchanged results.
func TestIdleAdvance(t *testing.T) {
	tc := genCase(t, 5)
	log := newLog(t)
	s, err := stream.New(log, tc.streamConfig(stream.KernelNaive, 0, len(tc.db)))
	if err != nil {
		t.Fatal(err)
	}
	appendBatch(t, log, tc.db)
	busy, err := s.Advance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	log.ResetScans()
	idle, err := s.Advance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if idle.Appended != 0 || idle.Remined || idle.Scans != 0 {
		t.Fatalf("idle advance: appended=%d remined=%v scans=%d", idle.Appended, idle.Remined, idle.Scans)
	}
	if log.Scans() != 0 {
		t.Fatalf("idle advance cost %d window passes", log.Scans())
	}
	if got, want := setKeys(idle.Frequent), setKeys(busy.Frequent); !reflect.DeepEqual(got, want) {
		t.Fatalf("idle advance changed the frequent set: %v vs %v", got, want)
	}
}

// TestEmptyLog: advancing over an empty log yields an empty result.
func TestEmptyLog(t *testing.T) {
	tc := genCase(t, 2)
	log := newLog(t)
	s, err := stream.New(log, tc.streamConfig(stream.KernelNaive, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Advance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Frequent.Len() != 0 || res.Border.Len() != 0 || res.Total != 0 {
		t.Fatalf("empty log mined %v", setKeys(res.Frequent))
	}
}

// TestWindowExpiryMatchesFreshWindow slides a window over the log and checks
// after every batch that the stream equals (a) a from-scratch batch mine of
// the live window, and (b) a fresh stream fed a fresh log holding only the
// live window — including the reservoir sample and symbol statistics.
func TestWindowExpiryMatchesFreshWindow(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		tc := genCase(t, seed)
		const window = 5
		cfg := tc.streamConfig(stream.KernelNaive, 0, len(tc.db))
		cfg.Window = window
		log := newLog(t)
		s, err := stream.New(log, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(tc.db); lo += 3 {
			hi := lo + 3
			if hi > len(tc.db) {
				hi = len(tc.db)
			}
			appendBatch(t, log, tc.db[lo:hi])
			res, err := s.Advance(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			start := hi - window
			if start < 0 {
				start = 0
			}
			live := tc.db[start:hi]
			if res.Total-res.Appended > hi || log.Start() != start {
				t.Fatalf("seed %d: window start %d, want %d", seed, log.Start(), start)
			}
			ref := batchMine(t, tc, live, core.KernelNaive, 0, len(tc.db))
			if got, want := setKeys(res.Frequent), setKeys(ref.Frequent); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d window [%d,%d): frequent %v, batch mine of window %v", seed, start, hi, got, want)
			}
			if !reflect.DeepEqual(res.SymbolMatch, ref.SymbolMatch) {
				t.Fatalf("seed %d window [%d,%d): symbol matches diverge", seed, start, hi)
			}

			// A fresh stream over a log holding only the live window must
			// land in the same state, sample included.
			fresh := newLog(t)
			appendBatch(t, fresh, live)
			fs, err := stream.New(fresh, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fres, err := fs.Advance(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got, want := setKeys(fres.Frequent), setKeys(res.Frequent); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: fresh-window stream frequent %v, slid stream %v", seed, got, want)
			}
			st, fst := s.State(), fs.State()
			if !reflect.DeepEqual(st.Sample, fst.Sample) {
				t.Fatalf("seed %d: slid sample %v, fresh-window sample %v", seed, st.Sample, fst.Sample)
			}
			if !reflect.DeepEqual(st.SymbolSums, fst.SymbolSums) {
				t.Fatalf("seed %d: slid symbol sums diverge from fresh-window stream", seed)
			}
		}
	}
}

// TestWindowExpirySubsampled repeats the sliding-window replay with a
// reservoir smaller than the window: the slid stream must still be
// indistinguishable from a fresh stream over the live window — the stateless
// draws make the sample a pure function of the window contents.
func TestWindowExpirySubsampled(t *testing.T) {
	tc := genCase(t, 7)
	cfg := tc.streamConfig(stream.KernelIncremental, 2, 3) // reservoir of 3 under a window of 6
	cfg.Window = 6
	log := newLog(t)
	s, err := stream.New(log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(tc.db); lo += 2 {
		hi := lo + 2
		if hi > len(tc.db) {
			hi = len(tc.db)
		}
		appendBatch(t, log, tc.db[lo:hi])
		res, err := s.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		start := hi - cfg.Window
		if start < 0 {
			start = 0
		}
		fresh := newLog(t)
		appendBatch(t, fresh, tc.db[start:hi])
		fs, err := stream.New(fresh, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fres, err := fs.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := setKeys(res.Frequent), setKeys(fres.Frequent); !reflect.DeepEqual(got, want) {
			t.Fatalf("window [%d,%d): slid frequent %v, fresh %v", start, hi, got, want)
		}
		st, fst := s.State(), fs.State()
		if !reflect.DeepEqual(st.Sample, fst.Sample) {
			t.Fatalf("window [%d,%d): slid sample %v, fresh %v", start, hi, st.Sample, fst.Sample)
		}
		if !reflect.DeepEqual(st.SampleSums, fst.SampleSums) {
			t.Fatalf("window [%d,%d): maintained sample sums diverge", start, hi)
		}
	}
}

// cloneMine deep-copies a miner.Result the way a checkpoint round-trip
// rebuilds it, so a restored stream shares no state with the original.
func cloneMine(r *miner.Result) *miner.Result {
	if r == nil {
		return nil
	}
	dup := *r
	dup.Frequent = r.Frequent.Clone()
	dup.Ambiguous = r.Ambiguous.Clone()
	if r.FQT != nil {
		dup.FQT = r.FQT.Clone()
	}
	if r.Ceiling != nil {
		dup.Ceiling = r.Ceiling.Clone()
	}
	dup.Values = make(map[string]float64, len(r.Values))
	for k, v := range r.Values {
		dup.Values[k] = v
	}
	dup.Spreads = make(map[string]float64, len(r.Spreads))
	for k, v := range r.Spreads {
		dup.Spreads[k] = v
	}
	dup.Labels = make(map[string]chernoff.Label, len(r.Labels))
	for k, v := range r.Labels {
		dup.Labels[k] = v
	}
	return &dup
}

// TestRestoreContinuesIdentically snapshots a stream mid-replay, restores it
// into a fresh stream.Stream, and runs both over the remaining batches in lockstep:
// every result must be bit-identical — stream.State round-trips losslessly.
func TestRestoreContinuesIdentically(t *testing.T) {
	tc := genCase(t, 6)
	log := newLog(t)
	cfg := tc.streamConfig(stream.KernelNaive, 0, len(tc.db))
	s, err := stream.New(log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	split := len(tc.db) / 2
	appendBatch(t, log, tc.db[:split])
	if _, err := s.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}

	restored, err := stream.Restore(log, cfg, s.State(), cloneMine(s.LastMine()))
	if err != nil {
		t.Fatal(err)
	}
	for lo := split; lo < len(tc.db); lo += 2 {
		hi := lo + 2
		if hi > len(tc.db) {
			hi = len(tc.db)
		}
		appendBatch(t, log, tc.db[lo:hi])
		a, err := s.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(setKeys(a.Frequent), setKeys(b.Frequent)) ||
			!reflect.DeepEqual(setKeys(a.Border), setKeys(b.Border)) {
			t.Fatalf("restored stream diverged at prefix %d: %v vs %v", hi, setKeys(b.Frequent), setKeys(a.Frequent))
		}
		if a.Remined != b.Remined {
			t.Fatalf("restored stream re-mine decision diverged at prefix %d: %v vs %v", hi, b.Remined, a.Remined)
		}
		if !reflect.DeepEqual(a.Phase2.Values, b.Phase2.Values) {
			t.Fatalf("restored stream values diverged at prefix %d", hi)
		}
	}
	// The final serialized states must agree too.
	if !reflect.DeepEqual(s.State(), restored.State()) {
		t.Fatal("final states diverge after lockstep replay")
	}
}

// TestRestoreRejectsInconsistentState: a state whose sample occupancy does
// not match its cursor and window is refused rather than silently adopted.
func TestRestoreRejectsInconsistentState(t *testing.T) {
	tc := genCase(t, 1)
	log := newLog(t)
	cfg := tc.streamConfig(stream.KernelNaive, 0, len(tc.db))
	s, err := stream.New(log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendBatch(t, log, tc.db[:4])
	if _, err := s.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.State()
	st.Sample = st.Sample[:len(st.Sample)-1]
	if _, err := stream.Restore(log, cfg, st, nil); err == nil {
		t.Fatal("Restore accepted a state with a truncated sample")
	}
	bad := s.State()
	bad.SymbolSums = bad.SymbolSums[:1]
	if _, err := stream.Restore(log, cfg, bad, nil); err == nil {
		t.Fatal("Restore accepted mismatched symbol sums")
	}
}

// TestConfigValidate exercises the config guard rails.
func TestConfigValidate(t *testing.T) {
	tc := genCase(t, 1)
	log := newLog(t)
	good := tc.streamConfig(stream.KernelNaive, 0, 4)
	bad := []func(*stream.Config){
		func(c *stream.Config) { c.C = nil },
		func(c *stream.Config) { c.MinMatch = 0 },
		func(c *stream.Config) { c.MinMatch = 1.5 },
		func(c *stream.Config) { c.Delta = 2 },
		func(c *stream.Config) { c.SampleSize = 0 },
		func(c *stream.Config) { c.MaxLen = 0 },
		func(c *stream.Config) { c.Window = -1 },
		func(c *stream.Config) { c.Kernel = stream.Kernel(9) },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := stream.New(log, cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := stream.New(log, good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}
