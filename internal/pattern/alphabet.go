package pattern

import (
	"fmt"
	"strings"
)

// Alphabet maps between symbol names and Symbol values. It is immutable
// after construction and safe for concurrent use.
type Alphabet struct {
	names []string
	index map[string]Symbol
}

// NewAlphabet builds an alphabet from distinct, non-empty names. The name
// "*" is reserved for the eternal symbol.
func NewAlphabet(names []string) (*Alphabet, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("alphabet: empty")
	}
	a := &Alphabet{
		names: make([]string, len(names)),
		index: make(map[string]Symbol, len(names)),
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("alphabet: name %d is empty", i)
		}
		if name == "*" {
			return nil, fmt.Errorf("alphabet: name %q is reserved for the eternal symbol", name)
		}
		if _, dup := a.index[name]; dup {
			return nil, fmt.Errorf("alphabet: duplicate name %q", name)
		}
		a.names[i] = name
		a.index[name] = Symbol(i)
	}
	return a, nil
}

// GenericAlphabet returns the alphabet {d1, d2, ..., dm} used throughout the
// paper's examples.
func GenericAlphabet(m int) *Alphabet {
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("d%d", i+1)
	}
	a, err := NewAlphabet(names)
	if err != nil {
		panic(err) // unreachable: generated names are distinct and non-empty
	}
	return a
}

// Size returns the number of distinct symbols m.
func (a *Alphabet) Size() int { return len(a.names) }

// Name returns the name of s, or "*" for the eternal symbol.
func (a *Alphabet) Name(s Symbol) string {
	if s.IsEternal() {
		return "*"
	}
	if int(s) >= len(a.names) {
		return fmt.Sprintf("?%d", int32(s))
	}
	return a.names[s]
}

// Names returns a copy of the symbol names in symbol order.
func (a *Alphabet) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// Symbol resolves a name ("*" resolves to Eternal).
func (a *Alphabet) Symbol(name string) (Symbol, error) {
	if name == "*" {
		return Eternal, nil
	}
	s, ok := a.index[name]
	if !ok {
		return 0, fmt.Errorf("alphabet: unknown symbol %q", name)
	}
	return s, nil
}

// Format renders a pattern with this alphabet's names, space separated.
func (a *Alphabet) Format(p Pattern) string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = a.Name(s)
	}
	return strings.Join(parts, " ")
}

// FormatSeq renders a raw sequence with this alphabet's names.
func (a *Alphabet) FormatSeq(seq []Symbol) string { return a.Format(Pattern(seq)) }

// Parse builds a pattern from a whitespace-separated list of names, e.g.
// "d1 * d3", and validates it.
func (a *Alphabet) Parse(text string) (Pattern, error) {
	fields := strings.Fields(text)
	p := make(Pattern, 0, len(fields))
	for _, f := range fields {
		s, err := a.Symbol(f)
		if err != nil {
			return nil, err
		}
		p = append(p, s)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseSeq builds a raw sequence (no eternal symbols allowed) from a
// whitespace-separated list of names.
func (a *Alphabet) ParseSeq(text string) ([]Symbol, error) {
	fields := strings.Fields(text)
	seq := make([]Symbol, 0, len(fields))
	for _, f := range fields {
		s, err := a.Symbol(f)
		if err != nil {
			return nil, err
		}
		if s.IsEternal() {
			return nil, fmt.Errorf("alphabet: sequence may not contain %q", f)
		}
		seq = append(seq, s)
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("alphabet: empty sequence")
	}
	return seq, nil
}
