package pattern

import "testing"

// FuzzParseKey checks that ParseKey never panics and that accepted keys
// round-trip through Key.
func FuzzParseKey(f *testing.F) {
	f.Add("0,1,2")
	f.Add("0,*,2")
	f.Add("*")
	f.Add("")
	f.Add("12,*,*,3")
	f.Add("-1,0")
	f.Add("999999999999999999999")
	f.Fuzz(func(t *testing.T, key string) {
		p, err := ParseKey(key)
		if err != nil {
			return
		}
		back, err := ParseKey(p.Key())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", p.Key(), err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip changed %q", key)
		}
	})
}
