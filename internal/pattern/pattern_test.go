package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Symbols d1..d5 as 0-based Symbol values, matching the paper's examples.
const (
	d1 = Symbol(0)
	d2 = Symbol(1)
	d3 = Symbol(2)
	d4 = Symbol(3)
	d5 = Symbol(4)
	et = Eternal
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Pattern
		ok   bool
	}{
		{"single symbol", Pattern{d1}, true},
		{"with internal gap", Pattern{d1, et, d3}, true},
		{"long gap", Pattern{d1, et, et, d4, d5}, true},
		{"empty", Pattern{}, false},
		{"leading eternal", Pattern{et, d2}, false},
		{"trailing eternal", Pattern{d1, et}, false},
		{"only eternal", Pattern{et}, false},
		{"invalid negative symbol", Pattern{Symbol(-7), d1}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(et, d1); err == nil {
		t.Fatal("New accepted a pattern starting with *")
	}
	p, err := New(d1, et, d3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.Len() != 3 || p.K() != 2 {
		t.Fatalf("got Len=%d K=%d, want 3,2", p.Len(), p.K())
	}
}

func TestKAndLen(t *testing.T) {
	p := MustNew(d1, et, et, d4, d5)
	if p.Len() != 5 {
		t.Errorf("Len=%d, want 5", p.Len())
	}
	if p.K() != 3 {
		t.Errorf("K=%d, want 3", p.K())
	}
}

func TestSubpatternPaperExamples(t *testing.T) {
	// From §3: d1*d3 and d1**d4d5 are subpatterns of d1*d3d4d5; d1d2 is not.
	super := MustNew(d1, et, d3, d4, d5)
	if !MustNew(d1, et, d3).IsSubpatternOf(super) {
		t.Error("d1 * d3 should be a subpattern of d1 * d3 d4 d5")
	}
	if !MustNew(d1, et, et, d4, d5).IsSubpatternOf(super) {
		t.Error("d1 * * d4 d5 should be a subpattern of d1 * d3 d4 d5")
	}
	if MustNew(d1, d2).IsSubpatternOf(super) {
		t.Error("d1 d2 should NOT be a subpattern of d1 * d3 d4 d5")
	}
}

func TestSubpatternOffsets(t *testing.T) {
	super := MustNew(d1, d2, d3, d4)
	for _, sub := range []Pattern{
		MustNew(d2, d3),
		MustNew(d3, d4),
		MustNew(d1, et, d3),
		MustNew(d2, et, d4),
		MustNew(d4),
	} {
		if !sub.IsSubpatternOf(super) {
			t.Errorf("%v should be a subpattern of %v", sub, super)
		}
	}
	for _, notSub := range []Pattern{
		MustNew(d4, d3),
		MustNew(d1, d3),
		MustNew(d5),
		MustNew(d1, d2, d3, d4, d5),
	} {
		if notSub.IsSubpatternOf(super) {
			t.Errorf("%v should NOT be a subpattern of %v", notSub, super)
		}
	}
}

func TestProperSubpattern(t *testing.T) {
	p := MustNew(d1, d2)
	if p.IsProperSubpatternOf(p) {
		t.Error("a pattern is not a proper subpattern of itself")
	}
	if !p.IsSubpatternOf(p) {
		t.Error("a pattern is a subpattern of itself")
	}
	if !p.IsProperSubpatternOf(MustNew(d1, d2, d3)) {
		t.Error("d1 d2 is a proper subpattern of d1 d2 d3")
	}
}

func TestTrim(t *testing.T) {
	if got := Trim(Pattern{et, et, d1, et, d2, et}); !got.Equal(MustNew(d1, et, d2)) {
		t.Errorf("Trim: got %v", got)
	}
	if got := Trim(Pattern{et, et}); got != nil {
		t.Errorf("Trim of all-eternal: got %v, want nil", got)
	}
	if got := Trim(Pattern{d1}); !got.Equal(MustNew(d1)) {
		t.Errorf("Trim identity: got %v", got)
	}
}

func TestExtend(t *testing.T) {
	p := MustNew(d1)
	q := Extend(p, 2, d4)
	if !q.Equal(MustNew(d1, et, et, d4)) {
		t.Errorf("Extend: got %v", q)
	}
	if len(p) != 1 {
		t.Error("Extend mutated its input")
	}
}

func TestImmediateSubpatterns(t *testing.T) {
	p := MustNew(d1, et, d3, d4)
	subs := NewSet(p.ImmediateSubpatterns()...)
	want := NewSet(
		MustNew(d3, d4),         // drop d1, trim leading * *
		MustNew(d1, et, et, d4), // star d3
		MustNew(d1, et, d3),     // star d4, trim
	)
	if subs.Len() != want.Len() {
		t.Fatalf("got %d immediate subpatterns, want %d: %v", subs.Len(), want.Len(), subs.Patterns())
	}
	for _, w := range want.Patterns() {
		if !subs.Contains(w) {
			t.Errorf("missing immediate subpattern %v", w)
		}
	}
	if got := MustNew(d1).ImmediateSubpatterns(); got != nil {
		t.Errorf("1-pattern should have no immediate subpatterns, got %v", got)
	}
}

func TestKeyAndEqual(t *testing.T) {
	a := MustNew(d1, et, d3)
	b := MustNew(d1, et, d3)
	c := MustNew(d1, d2, d3)
	if a.Key() != b.Key() || !a.Equal(b) {
		t.Error("equal patterns must share Key")
	}
	if a.Key() == c.Key() || a.Equal(c) {
		t.Error("distinct patterns must differ")
	}
	// Key must distinguish multi-digit symbols from concatenations.
	x := Pattern{Symbol(1), Symbol(12)}
	y := Pattern{Symbol(11), Symbol(2)}
	if x.Key() == y.Key() {
		t.Errorf("Key collision: %q", x.Key())
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p := randomPattern(r, 20, 10)
		got, err := ParseKey(p.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", p.Key(), err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip changed %v to %v", p, got)
		}
	}
	if _, err := ParseKey(""); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := ParseKey("1,x"); err == nil {
		t.Error("garbage key accepted")
	}
}

func TestStringRendering(t *testing.T) {
	if got := MustNew(d1, et, d3).String(); got != "d1 * d3" {
		t.Errorf("String: got %q", got)
	}
}

func TestSymbols(t *testing.T) {
	p := MustNew(d1, et, d3, d1)
	syms := p.Symbols()
	if len(syms) != 2 || syms[0] != d1 || syms[1] != d3 {
		t.Errorf("Symbols: got %v", syms)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(MustNew(d1), MustNew(d1, d2), MustNew(d1)) // dup collapses
	if s.Len() != 2 {
		t.Fatalf("Len=%d, want 2", s.Len())
	}
	if !s.Contains(MustNew(d1, d2)) {
		t.Error("Contains failed")
	}
	if s.Add(MustNew(d1)) {
		t.Error("Add of duplicate reported true")
	}
	if !s.Remove(MustNew(d1)) || s.Contains(MustNew(d1)) {
		t.Error("Remove failed")
	}
	if s.Remove(MustNew(d5)) {
		t.Error("Remove of absent reported true")
	}

	a := NewSet(MustNew(d1), MustNew(d2))
	b := NewSet(MustNew(d2), MustNew(d3))
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(MustNew(d2)) {
		t.Errorf("Intersect: %v", got.Patterns())
	}
	if got := a.Diff(b); got.Len() != 1 || !got.Contains(MustNew(d1)) {
		t.Errorf("Diff: %v", got.Patterns())
	}
	a.Union(b)
	if a.Len() != 3 {
		t.Errorf("Union: Len=%d", a.Len())
	}
}

func TestSetPatternsDeterministic(t *testing.T) {
	s := NewSet(MustNew(d3), MustNew(d1), MustNew(d2))
	first := s.Patterns()
	for i := 0; i < 5; i++ {
		again := s.Patterns()
		for j := range first {
			if !first[j].Equal(again[j]) {
				t.Fatal("Patterns() order is not deterministic")
			}
		}
	}
}

func TestSetCoverage(t *testing.T) {
	border := NewSet(MustNew(d1, d2, d3), MustNew(d1, et, et, d4))
	// Frequent region = subpatterns of border elements.
	for _, p := range []Pattern{
		MustNew(d1, d2), MustNew(d2, d3), MustNew(d1, et, d3), MustNew(d1, et, et, d4),
	} {
		if !border.CoveredBy(p) {
			t.Errorf("%v should be covered by the border", p)
		}
	}
	if border.CoveredBy(MustNew(d1, d2, d3, d4)) {
		t.Error("superpattern of a border element must not be covered")
	}
	if !border.Covers(MustNew(d1, d2, d3, d4, d5)) {
		t.Error("Covers: d1 d2 d3 d4 d5 is a superpattern of the border element d1 d2 d3")
	}
}

func TestSetMinMaxK(t *testing.T) {
	s := NewSet(MustNew(d1), MustNew(d1, d2, d3))
	if s.MinK() != 1 || s.MaxK() != 3 {
		t.Errorf("MinK=%d MaxK=%d", s.MinK(), s.MaxK())
	}
	empty := NewSet()
	if empty.MinK() != 0 || empty.MaxK() != 0 {
		t.Error("empty set levels should be 0")
	}
}

func TestBorderAndFloor(t *testing.T) {
	// Frequent region from Figure 3's example: solid-circle patterns whose
	// border is {d1d2d3, d1d2**d5, d1**d4}.
	region := NewSet(
		MustNew(d1), MustNew(d2), MustNew(d3), MustNew(d4), MustNew(d5),
		MustNew(d1, d2), MustNew(d2, d3), MustNew(d1, et, d3),
		MustNew(d1, d2, d3),
		MustNew(d1, d2, et, et, d5),
		MustNew(d1, et, et, d4),
	)
	b := Border(region)
	want := NewSet(MustNew(d1, d2, d3), MustNew(d1, d2, et, et, d5), MustNew(d1, et, et, d4))
	if b.Len() != want.Len() {
		t.Fatalf("border size %d, want %d: %v", b.Len(), want.Len(), b.Patterns())
	}
	for _, w := range want.Patterns() {
		if !b.Contains(w) {
			t.Errorf("border missing %v", w)
		}
	}

	f := Floor(region)
	for _, p := range []Pattern{MustNew(d1), MustNew(d2), MustNew(d3), MustNew(d4), MustNew(d5)} {
		if !f.Contains(p) {
			t.Errorf("floor missing %v", p)
		}
	}
	if f.Len() != 5 {
		t.Errorf("floor size %d, want 5", f.Len())
	}
}

func TestHalfwayFig6Example(t *testing.T) {
	// Figure 6(b): lower border {d1}, upper border {d1 d2 d3 d4 d5}; the
	// halfway layer is the six 3-patterns d1d2d3, d1d2*d4, d1d2**d5,
	// d1*d3d4, d1*d3*d5, d1**d4d5.
	lower := MustNew(d1)
	upper := MustNew(d1, d2, d3, d4, d5)
	got := NewSet(Halfway(lower, upper, 0)...)
	want := NewSet(
		MustNew(d1, d2, d3),
		MustNew(d1, d2, et, d4),
		MustNew(d1, d2, et, et, d5),
		MustNew(d1, et, d3, d4),
		MustNew(d1, et, d3, et, d5),
		MustNew(d1, et, et, d4, d5),
	)
	if got.Len() != want.Len() {
		t.Fatalf("halfway layer size %d, want %d: %v", got.Len(), want.Len(), got.Patterns())
	}
	for _, w := range want.Patterns() {
		if !got.Contains(w) {
			t.Errorf("halfway layer missing %v", w)
		}
	}
}

func TestHalfwayAdjacentLevels(t *testing.T) {
	if got := Halfway(MustNew(d1), MustNew(d1, d2), 0); got != nil {
		t.Errorf("no strictly-between layer exists, got %v", got)
	}
	if got := Halfway(MustNew(d1, d2), MustNew(d1, d2), 0); got != nil {
		t.Errorf("equal patterns have no halfway, got %v", got)
	}
}

func TestHalfwayNotSubpattern(t *testing.T) {
	if got := Halfway(MustNew(d5), MustNew(d1, d2, d3, d4), 0); got != nil {
		t.Errorf("p1 not a subpattern of p2: want nil, got %v", got)
	}
}

func TestHalfwayLimit(t *testing.T) {
	lower := MustNew(d1)
	upper := MustNew(d1, d2, d3, d4, d5)
	got := Halfway(lower, upper, 2)
	if len(got) != 2 {
		t.Errorf("limit=2: got %d patterns", len(got))
	}
}

func TestHalfwayLayerSets(t *testing.T) {
	lower := NewSet(MustNew(d1))
	upper := NewSet(MustNew(d1, d2, d3, d4, d5))
	layer := HalfwayLayer(lower, upper, 0)
	if layer.Len() != 6 {
		t.Errorf("layer size %d, want 6", layer.Len())
	}
	capped := HalfwayLayer(lower, upper, 3)
	if capped.Len() != 3 {
		t.Errorf("capped layer size %d, want 3", capped.Len())
	}
}

func TestAlphabet(t *testing.T) {
	a := GenericAlphabet(5)
	if a.Size() != 5 {
		t.Fatalf("Size=%d", a.Size())
	}
	if a.Name(d3) != "d3" || a.Name(Eternal) != "*" {
		t.Error("Name rendering wrong")
	}
	s, err := a.Symbol("d2")
	if err != nil || s != d2 {
		t.Errorf("Symbol(d2)=%v,%v", s, err)
	}
	if _, err := a.Symbol("zz"); err == nil {
		t.Error("unknown name accepted")
	}
	p, err := a.Parse("d1 * d3")
	if err != nil || !p.Equal(MustNew(d1, et, d3)) {
		t.Errorf("Parse: %v, %v", p, err)
	}
	if _, err := a.Parse("* d1"); err == nil {
		t.Error("Parse accepted leading *")
	}
	if got := a.Format(p); got != "d1 * d3" {
		t.Errorf("Format: %q", got)
	}
	seq, err := a.ParseSeq("d1 d2 d2")
	if err != nil || len(seq) != 3 {
		t.Errorf("ParseSeq: %v, %v", seq, err)
	}
	if _, err := a.ParseSeq("d1 * d2"); err == nil {
		t.Error("ParseSeq accepted eternal symbol")
	}
	if _, err := a.ParseSeq(""); err == nil {
		t.Error("ParseSeq accepted empty")
	}
}

func TestAlphabetConstructionErrors(t *testing.T) {
	if _, err := NewAlphabet(nil); err == nil {
		t.Error("empty alphabet accepted")
	}
	if _, err := NewAlphabet([]string{"a", "a"}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewAlphabet([]string{"a", "*"}); err == nil {
		t.Error("reserved name * accepted")
	}
	if _, err := NewAlphabet([]string{""}); err == nil {
		t.Error("empty name accepted")
	}
}

// randomPattern builds a valid random pattern over m symbols with up to
// maxLen positions.
func randomPattern(r *rand.Rand, m, maxLen int) Pattern {
	l := 1 + r.Intn(maxLen)
	p := make(Pattern, l)
	for i := range p {
		if i > 0 && i < l-1 && r.Intn(3) == 0 {
			p[i] = Eternal
		} else {
			p[i] = Symbol(r.Intn(m))
		}
	}
	return p
}

func TestQuickImmediateSubpatternsAreSubpatterns(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		p := randomPattern(r, 6, 8)
		for _, q := range p.ImmediateSubpatterns() {
			if err := q.Validate(); err != nil {
				return false
			}
			if !q.IsSubpatternOf(p) {
				return false
			}
			if q.K() != p.K()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubpatternReflexiveAndAntisymmetricOnLength(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		p := randomPattern(r, 6, 8)
		if !p.IsSubpatternOf(p) {
			return false
		}
		q := randomPattern(r, 6, 8)
		// If both directions hold the patterns must have equal length
		// (subpattern requires len(p) <= len(q)).
		if p.IsSubpatternOf(q) && q.IsSubpatternOf(p) && len(p) != len(q) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickHalfwayInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		p2 := randomPattern(r, 5, 9)
		// Derive a random subpattern p1 of p2 by starring positions and trimming.
		p1 := p2.Clone()
		for i := range p1 {
			if r.Intn(2) == 0 {
				p1[i] = Eternal
			}
		}
		p1 = Trim(p1)
		if p1 == nil {
			return true
		}
		target := (p1.K() + p2.K() + 1) / 2
		for _, h := range Halfway(p1, p2, 50) {
			if h.K() != target {
				return false
			}
			if !p1.IsSubpatternOf(h) || !h.IsSubpatternOf(p2) {
				return false
			}
			if err := h.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTrimIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		raw := make(Pattern, 1+r.Intn(10))
		for i := range raw {
			if r.Intn(2) == 0 {
				raw[i] = Eternal
			} else {
				raw[i] = Symbol(r.Intn(5))
			}
		}
		t1 := Trim(raw)
		if t1 == nil {
			return true
		}
		t2 := Trim(t1)
		return t1.Equal(t2) && t1.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := NewSet(MustNew(d1), MustNew(d2), MustNew(d3))
	visited := 0
	s.ForEach(func(p Pattern) bool {
		visited++
		return visited < 2
	})
	if visited != 2 {
		t.Errorf("visited %d, want 2 (early stop)", visited)
	}
	total := 0
	s.ForEach(func(Pattern) bool { total++; return true })
	if total != 3 {
		t.Errorf("full visit saw %d", total)
	}
}
