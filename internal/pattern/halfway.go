package pattern

// Halfway implements Algorithm 4.4 of the paper for one pair of border
// elements: given p1, a subpattern of p2, it returns the patterns with
// ⌈(K(p1)+K(p2))/2⌉ non-eternal symbols that are superpatterns of p1 and
// subpatterns of p2. These are the patterns with maximal collapsing power
// between the two borders.
//
// The enumeration walks the subsets of p2's non-eternal positions; limit
// (if > 0) caps the number of returned patterns to keep the worst-case
// combinatorics bounded — the collapsing loop fills a memory budget anyway,
// so a deterministic prefix of the layer is sufficient.
func Halfway(p1, p2 Pattern, limit int) []Pattern {
	return HalfwayFiltered(p1, p2, limit, nil)
}

// HalfwayFiltered is Halfway with an acceptance filter: only patterns for
// which accept returns true are returned and counted toward limit, so a
// caller probing an implicit region can skip already-resolved patterns
// without them consuming the generation budget. A nil accept admits all.
func HalfwayFiltered(p1, p2 Pattern, limit int, accept func(Pattern) bool) []Pattern {
	if !p1.IsSubpatternOf(p2) {
		return nil
	}
	k1, k2 := p1.K(), p2.K()
	target := (k1 + k2 + 1) / 2
	if target <= k1 || target >= k2 {
		// Adjacent or equal levels: there is no strictly-between layer.
		return nil
	}
	positions := make([]int, 0, k2)
	for i, s := range p2 {
		if !s.IsEternal() {
			positions = append(positions, i)
		}
	}
	seen := make(map[string]struct{})
	var out []Pattern
	chosen := make([]int, 0, target)
	var rec func(start int)
	rec = func(start int) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if len(chosen) == target {
			cand := make(Pattern, len(p2))
			for i := range cand {
				cand[i] = Eternal
			}
			for _, pos := range chosen {
				cand[pos] = p2[pos]
			}
			trimmed := Trim(cand)
			if trimmed == nil || trimmed.K() != target {
				return
			}
			if !p1.IsSubpatternOf(trimmed) {
				return
			}
			key := trimmed.Key()
			if _, ok := seen[key]; ok {
				return
			}
			seen[key] = struct{}{}
			if accept != nil && !accept(trimmed) {
				return
			}
			out = append(out, trimmed)
			return
		}
		// Not enough remaining positions to reach the target size.
		if len(positions)-start < target-len(chosen) {
			return
		}
		for i := start; i < len(positions); i++ {
			chosen = append(chosen, positions[i])
			rec(i + 1)
			chosen = chosen[:len(chosen)-1]
			if limit > 0 && len(out) >= limit {
				return
			}
		}
	}
	rec(0)
	return out
}

// HalfwayLayer implements the layer computation of Algorithm 4.3: for every
// pair (p1 ∈ lower, p2 ∈ upper) with p1 a subpattern of p2, the halfway
// patterns are collected into one deduplicated layer. limit (if > 0) caps the
// total number of patterns produced.
func HalfwayLayer(lower, upper *Set, limit int) *Set {
	return HalfwayLayerFiltered(lower, upper, limit, nil)
}

// HalfwayLayerFiltered is HalfwayLayer with an acceptance filter (see
// HalfwayFiltered).
func HalfwayLayerFiltered(lower, upper *Set, limit int, accept func(Pattern) bool) *Set {
	layer := NewSet()
	for _, p1 := range lower.Patterns() {
		for _, p2 := range upper.Patterns() {
			if limit > 0 && layer.Len() >= limit {
				return layer
			}
			rem := 0
			if limit > 0 {
				rem = limit - layer.Len()
			}
			for _, h := range HalfwayFiltered(p1, p2, rem, accept) {
				layer.Add(h)
			}
		}
	}
	return layer
}
