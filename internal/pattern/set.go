package pattern

import "sort"

// Set is a collection of distinct patterns keyed by their canonical Key.
// The zero value is not usable; construct with NewSet.
type Set struct {
	m map[string]Pattern
}

// NewSet builds a set holding the given patterns (duplicates collapse).
func NewSet(ps ...Pattern) *Set {
	s := &Set{m: make(map[string]Pattern, len(ps))}
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

// Add inserts p; it reports whether p was newly added.
func (s *Set) Add(p Pattern) bool {
	k := p.Key()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = p
	return true
}

// Remove deletes p; it reports whether p was present.
func (s *Set) Remove(p Pattern) bool {
	k := p.Key()
	if _, ok := s.m[k]; !ok {
		return false
	}
	delete(s.m, k)
	return true
}

// Contains reports whether p is a member.
func (s *Set) Contains(p Pattern) bool {
	_, ok := s.m[p.Key()]
	return ok
}

// Len returns the number of members.
func (s *Set) Len() int { return len(s.m) }

// ForEach visits every member in unspecified order; it exists for hot loops
// (e.g. Apriori label propagation over large ambiguous regions) where the
// key-sort of Patterns would dominate. The callback must not mutate the set;
// it returns false to stop early.
func (s *Set) ForEach(fn func(p Pattern) bool) {
	for _, p := range s.m {
		if !fn(p) {
			return
		}
	}
}

// Patterns returns the members in a deterministic (key-sorted) order.
func (s *Set) Patterns() []Pattern {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Pattern, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{m: make(map[string]Pattern, len(s.m))}
	for k, p := range s.m {
		c.m[k] = p
	}
	return c
}

// Union adds every member of other to s.
func (s *Set) Union(other *Set) {
	for k, p := range other.m {
		s.m[k] = p
	}
}

// Intersect returns the members present in both sets.
func (s *Set) Intersect(other *Set) *Set {
	out := NewSet()
	for k, p := range s.m {
		if _, ok := other.m[k]; ok {
			out.m[k] = p
		}
	}
	return out
}

// Diff returns the members of s absent from other.
func (s *Set) Diff(other *Set) *Set {
	out := NewSet()
	for k, p := range s.m {
		if _, ok := other.m[k]; !ok {
			out.m[k] = p
		}
	}
	return out
}

// CoveredBy reports whether p is a subpattern of (or equal to) some member.
// With a border set of frequent patterns this is the membership test for the
// downward-closed frequent region (Apriori property, Claim 3.2).
func (s *Set) CoveredBy(p Pattern) bool {
	for _, q := range s.m {
		if p.IsSubpatternOf(q) {
			return true
		}
	}
	return false
}

// Covers reports whether p is a superpattern of (or equal to) some member.
func (s *Set) Covers(p Pattern) bool {
	for _, q := range s.m {
		if q.IsSubpatternOf(p) {
			return true
		}
	}
	return false
}

// MaxK returns the largest lattice level among members (0 for an empty set).
func (s *Set) MaxK() int {
	max := 0
	for _, p := range s.m {
		if k := p.K(); k > max {
			max = k
		}
	}
	return max
}

// MinK returns the smallest lattice level among members (0 for an empty set).
func (s *Set) MinK() int {
	min := 0
	first := true
	for _, p := range s.m {
		if k := p.K(); first || k < min {
			min, first = k, false
		}
	}
	return min
}
