package pattern

// Border computes the border of a downward-closed pattern collection: the
// members none of whose proper superpatterns (within the collection) are also
// members. For the set of frequent patterns this is the paper's border of
// frequent patterns (§3); the FQT and INFQT borders of Phase 2 are computed
// the same way over the frequent and ambiguous regions respectively.
//
// The input need not be downward closed; Border simply keeps every pattern
// that is not a proper subpattern of another member.
func Border(s *Set) *Set {
	members := s.Patterns()
	out := NewSet()
	for i, p := range members {
		maximal := true
		for j, q := range members {
			if i == j {
				continue
			}
			if p.IsProperSubpatternOf(q) {
				maximal = false
				break
			}
		}
		if maximal {
			out.Add(p)
		}
	}
	return out
}

// Floor computes the minimal members of a collection: those that are not
// proper superpatterns of any other member. For an upward-closed region
// (e.g. the infrequent patterns) the floor is its lower border.
func Floor(s *Set) *Set {
	members := s.Patterns()
	out := NewSet()
	for i, p := range members {
		minimal := true
		for j, q := range members {
			if i == j {
				continue
			}
			if q.IsProperSubpatternOf(p) {
				minimal = false
				break
			}
		}
		if minimal {
			out.Add(p)
		}
	}
	return out
}
