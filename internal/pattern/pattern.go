// Package pattern implements sequential patterns over a finite alphabet with
// the eternal ("don't care") symbol *, the sub-/super-pattern lattice of
// Yang et al. (SIGMOD 2002), and the halfway-pattern generation used by the
// border-collapsing algorithm.
//
// A pattern is an ordered list of positions; each position holds either a
// concrete symbol of the alphabet Θ or the eternal symbol * that matches any
// single observed symbol. Following Definition 3.2 of the paper, a valid
// pattern never starts or ends with *. The lattice level of a pattern is its
// number of non-eternal symbols (a "k-pattern").
package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// Symbol identifies one symbol of the alphabet Θ. Concrete symbols are the
// integers 0..m-1; the eternal symbol is the negative sentinel Eternal.
type Symbol int32

// Eternal is the "don't care" position marker (the paper's * symbol). It is
// fully compatible with every observed symbol: C(*, d) = 1 for all d.
const Eternal Symbol = -1

// IsEternal reports whether s is the don't-care symbol.
func (s Symbol) IsEternal() bool { return s < 0 }

// Pattern is an ordered list of positions. The zero value is the empty
// pattern, which is not valid; construct patterns with New or Extend and
// check them with Validate.
type Pattern []Symbol

// New builds a pattern from the given positions and validates it.
func New(positions ...Symbol) (Pattern, error) {
	p := Pattern(positions)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.Clone(), nil
}

// MustNew is New but panics on invalid input. It is intended for tests and
// package-level literals where the pattern is known to be well formed.
func MustNew(positions ...Symbol) Pattern {
	p, err := New(positions...)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks Definition 3.2: the pattern is non-empty, its first and
// last positions are non-eternal, and every concrete symbol is non-negative.
func (p Pattern) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("pattern: empty")
	}
	if p[0].IsEternal() {
		return fmt.Errorf("pattern: first position is eternal")
	}
	if p[len(p)-1].IsEternal() {
		return fmt.Errorf("pattern: last position is eternal")
	}
	for i, s := range p {
		if s.IsEternal() && s != Eternal {
			return fmt.Errorf("pattern: position %d holds invalid symbol %d", i, s)
		}
	}
	return nil
}

// Len returns the total length l of the pattern, counting eternal positions.
func (p Pattern) Len() int { return len(p) }

// K returns the number of non-eternal symbols (the lattice level of the
// pattern; a pattern with K()==k is a "k-pattern" in the paper).
func (p Pattern) K() int {
	k := 0
	for _, s := range p {
		if !s.IsEternal() {
			k++
		}
	}
	return k
}

// Clone returns an independent copy of p.
func (p Pattern) Clone() Pattern {
	q := make(Pattern, len(p))
	copy(q, p)
	return q
}

// Equal reports position-wise equality.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Key returns a compact canonical representation usable as a map key. Two
// patterns have the same Key iff they are Equal.
func (p Pattern) Key() string {
	buf := make([]byte, 0, len(p)*3)
	for i, s := range p {
		if i > 0 {
			buf = append(buf, ',')
		}
		if s.IsEternal() {
			buf = append(buf, '*')
		} else {
			buf = strconv.AppendInt(buf, int64(int32(s)), 10)
		}
	}
	return string(buf)
}

// ParseKey reverses Key: it rebuilds the pattern from its canonical
// representation. The result is not validated (Key round-trips any pattern,
// valid or not); call Validate if needed.
func ParseKey(key string) (Pattern, error) {
	if key == "" {
		return nil, fmt.Errorf("pattern: empty key")
	}
	parts := strings.Split(key, ",")
	p := make(Pattern, len(parts))
	for i, part := range parts {
		if part == "*" {
			p[i] = Eternal
			continue
		}
		v, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("pattern: bad key %q: %w", key, err)
		}
		p[i] = Symbol(v)
	}
	return p, nil
}

// String renders the pattern with d<i> names, e.g. "d1 * d3". Positions are
// 1-based in the rendering to match the paper's examples.
func (p Pattern) String() string {
	var b strings.Builder
	for i, s := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.IsEternal() {
			b.WriteByte('*')
		} else {
			fmt.Fprintf(&b, "d%d", int32(s)+1)
		}
	}
	return b.String()
}

// Symbols returns the distinct concrete symbols used by the pattern.
func (p Pattern) Symbols() []Symbol {
	seen := make(map[Symbol]struct{}, len(p))
	out := make([]Symbol, 0, len(p))
	for _, s := range p {
		if s.IsEternal() {
			continue
		}
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// Trim strips leading and trailing eternal positions, returning a valid
// pattern (or nil if p contains no concrete symbol).
func Trim(p Pattern) Pattern {
	lo, hi := 0, len(p)
	for lo < hi && p[lo].IsEternal() {
		lo++
	}
	for hi > lo && p[hi-1].IsEternal() {
		hi--
	}
	if lo == hi {
		return nil
	}
	return p[lo:hi].Clone()
}

// Extend returns p extended on the right by gap eternal positions followed
// by the concrete symbol d. gap must be >= 0 and d must be concrete.
func Extend(p Pattern, gap int, d Symbol) Pattern {
	if gap < 0 {
		panic("pattern: negative gap")
	}
	if d.IsEternal() {
		panic("pattern: cannot extend with eternal symbol")
	}
	q := make(Pattern, 0, len(p)+gap+1)
	q = append(q, p...)
	for i := 0; i < gap; i++ {
		q = append(q, Eternal)
	}
	return append(q, d)
}

// IsSubpatternOf implements Definition 3.3: p is a subpattern of q if there
// is an offset j such that every position of p either is eternal or equals
// the corresponding position of q. Every pattern is a subpattern of itself.
func (p Pattern) IsSubpatternOf(q Pattern) bool {
	if len(p) > len(q) {
		return false
	}
	for j := 0; j+len(p) <= len(q); j++ {
		ok := true
		for i := range p {
			if p[i] != Eternal && p[i] != q[i+j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// IsSuperpatternOf is the converse of IsSubpatternOf.
func (p Pattern) IsSuperpatternOf(q Pattern) bool { return q.IsSubpatternOf(p) }

// IsProperSubpatternOf reports p ⊂ q (subpattern but not equal).
func (p Pattern) IsProperSubpatternOf(q Pattern) bool {
	return !p.Equal(q) && p.IsSubpatternOf(q)
}

// ImmediateSubpatterns returns the patterns obtained by replacing exactly one
// non-eternal position of p with * and trimming the result (Definition 3.3's
// covering relation, one lattice level down). Results are deduplicated; a
// 1-pattern has no immediate subpatterns.
func (p Pattern) ImmediateSubpatterns() []Pattern {
	if p.K() <= 1 {
		return nil
	}
	seen := make(map[string]struct{})
	var out []Pattern
	for i, s := range p {
		if s.IsEternal() {
			continue
		}
		q := p.Clone()
		q[i] = Eternal
		q = Trim(q)
		if q == nil {
			continue
		}
		k := q.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, q)
	}
	return out
}
