package pattern

// Shape describes the gap structure of a k-pattern: Gaps[i] is the number of
// eternal symbols between concrete symbol i and i+1 (len(Gaps) == k-1). The
// total pattern length is k + sum(Gaps).
type Shape struct {
	Gaps []int
	Len  int // total pattern length
}

// Offsets returns the position of each concrete symbol within the pattern.
func (s Shape) Offsets() []int {
	k := len(s.Gaps) + 1
	out := make([]int, k)
	pos := 0
	for i := 0; i < k; i++ {
		out[i] = pos
		if i < len(s.Gaps) {
			pos += s.Gaps[i] + 1
		}
	}
	return out
}

// Build assembles a pattern of this shape from k concrete symbols.
func (s Shape) Build(syms []Symbol) Pattern {
	p := make(Pattern, s.Len)
	for i := range p {
		p[i] = Eternal
	}
	for i, off := range s.Offsets() {
		p[off] = syms[i]
	}
	return p
}

// ShapeKey renders the pattern of shape s holding the given concrete
// symbols in Pattern.Key format, without materializing the pattern. It is
// the hot-path key builder for the window-sweep miners.
func ShapeKey(s Shape, syms []Symbol) string {
	buf := make([]byte, 0, 4*s.Len)
	for i, d := range syms {
		if i > 0 {
			for g := 0; g < s.Gaps[i-1]; g++ {
				buf = append(buf, ',', '*')
			}
			buf = append(buf, ',')
		}
		buf = appendInt(buf, int32(d))
	}
	return string(buf)
}

func appendInt(buf []byte, v int32) []byte {
	if v == 0 {
		return append(buf, '0')
	}
	var tmp [11]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(buf, tmp[i:]...)
}

// Shapes enumerates every gap structure of a k-pattern with total length at
// most maxLen and each internal gap at most maxGap, in a deterministic
// order. k must be >= 1; k == 1 yields the single empty-gap shape.
func Shapes(k, maxLen, maxGap int) []Shape {
	if k < 1 || maxLen < k {
		return nil
	}
	var out []Shape
	gaps := make([]int, 0, k-1)
	var rec func(remaining, length int)
	rec = func(remaining, length int) {
		if remaining == 0 {
			cp := make([]int, len(gaps))
			copy(cp, gaps)
			out = append(out, Shape{Gaps: cp, Len: length})
			return
		}
		for g := 0; g <= maxGap; g++ {
			if length+g+1 > maxLen {
				break
			}
			gaps = append(gaps, g)
			rec(remaining-1, length+g+1)
			gaps = gaps[:len(gaps)-1]
		}
	}
	rec(k-1, 1)
	return out
}
