package chernoff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
)

func TestEpsilonPaperExample(t *testing.T) {
	// §4: spread 1, n = 10000, confidence 99.99% (δ=0.0001) ⇒ ε ≈ 0.0215.
	got := Epsilon(1, 0.0001, 10000)
	if math.Abs(got-0.0215) > 0.0005 {
		t.Errorf("ε=%v, want ≈0.0215", got)
	}
}

func TestEpsilonScalesLinearlyWithSpread(t *testing.T) {
	// §4.1: "ε is linearly proportional to R" — R=0.05 cuts ε by 95%.
	e1 := Epsilon(1, 0.001, 5000)
	e2 := Epsilon(0.05, 0.001, 5000)
	if math.Abs(e2-0.05*e1) > 1e-12 {
		t.Errorf("ε(R=0.05)=%v, want %v", e2, 0.05*e1)
	}
}

func TestEpsilonEdgeCases(t *testing.T) {
	if !math.IsInf(Epsilon(1, 0.001, 0), 1) {
		t.Error("n=0 should give infinite ε")
	}
	if got := Epsilon(0, 0.001, 100); got != 0 {
		t.Errorf("zero spread: ε=%v", got)
	}
}

func TestSampleSizeInvertsEpsilon(t *testing.T) {
	for _, tc := range []struct{ spread, delta, eps float64 }{
		{1, 0.0001, 0.0215},
		{0.05, 0.001, 0.001},
		{0.5, 0.01, 0.01},
	} {
		n := SampleSize(tc.spread, tc.delta, tc.eps)
		if got := Epsilon(tc.spread, tc.delta, n); got > tc.eps+1e-12 {
			t.Errorf("SampleSize(%v,%v,%v)=%d but ε=%v > target", tc.spread, tc.delta, tc.eps, n, got)
		}
		if n > 1 {
			if got := Epsilon(tc.spread, tc.delta, n-1); got <= tc.eps {
				t.Errorf("SampleSize not minimal: n-1=%d already gives ε=%v", n-1, got)
			}
		}
	}
	if SampleSize(1, 0.001, 0) != math.MaxInt {
		t.Error("eps=0 should be unattainable")
	}
}

// TestSampleSizeExtremes drives SampleSize into the regions where the
// unclamped float exceeds the int range — an implementation-defined
// conversion before the clamp was added.
func TestSampleSizeExtremes(t *testing.T) {
	for _, tc := range []struct {
		name               string
		spread, delta, eps float64
		want               int
	}{
		{"tiny eps overflows", 1, 1e-4, 1e-12, math.MaxInt},
		{"tiny delta and eps overflow", 1, 1e-300, 1e-9, math.MaxInt},
		{"denormal eps", 1, 0.5, math.SmallestNonzeroFloat64, math.MaxInt},
		{"negative eps unattainable", 1, 0.5, -1, math.MaxInt},
		{"zero spread still needs one sample", 0, 0.5, 0.1, 1},
		{"huge eps needs one sample", 1, 0.5, 100, 1},
		{"NaN guard: zero spread at delta=0", 0, 0, 0.1, math.MaxInt},
	} {
		if got := SampleSize(tc.spread, tc.delta, tc.eps); got != tc.want {
			t.Errorf("%s: SampleSize(%v,%v,%v) = %d, want %d",
				tc.name, tc.spread, tc.delta, tc.eps, got, tc.want)
		}
		// Whatever comes out must be a usable sample size.
		if got := SampleSize(tc.spread, tc.delta, tc.eps); got < 1 {
			t.Errorf("%s: non-positive sample size %d", tc.name, got)
		}
	}
}

func TestRestrictedSpread(t *testing.T) {
	// §4.1 example: matches of d1 and d2 are 0.1 and 0.05 ⇒ R(d1 * d2)=0.05.
	symbolMatch := []float64{0.1, 0.05, 0.9}
	p := pattern.MustNew(0, pattern.Eternal, 1)
	if got := RestrictedSpread(p, symbolMatch); got != 0.05 {
		t.Errorf("R=%v, want 0.05", got)
	}
	// Eternal positions do not constrain the spread.
	q := pattern.MustNew(2)
	if got := RestrictedSpread(q, symbolMatch); got != 0.9 {
		t.Errorf("R=%v, want 0.9", got)
	}
}

func TestClassifier(t *testing.T) {
	c, err := NewClassifier(0.1, 0.0001, 10000)
	if err != nil {
		t.Fatal(err)
	}
	eps := c.Epsilon(1) // ≈ 0.0215
	cases := []struct {
		m    float64
		want Label
	}{
		{0.1 + eps + 0.001, Frequent},
		{0.1 - eps - 0.001, Infrequent},
		{0.1, Ambiguous},
		{0.1 + eps/2, Ambiguous},
		{0.1 - eps/2, Ambiguous},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.m, 1); got != tc.want {
			t.Errorf("Classify(%v)=%v, want %v", tc.m, got, tc.want)
		}
	}
}

func TestClassifierTighterSpreadShrinksAmbiguity(t *testing.T) {
	c, _ := NewClassifier(0.01, 0.001, 1000)
	m := 0.01 + 0.01 // slightly above the threshold
	if got := c.Classify(m, 1); got != Ambiguous {
		t.Fatalf("wide spread should be ambiguous, got %v", got)
	}
	if got := c.Classify(m, 0.05); got != Frequent {
		t.Errorf("restricted spread should resolve to frequent, got %v", got)
	}
}

func TestNewClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(-0.1, 0.001, 10); err == nil {
		t.Error("negative min_match accepted")
	}
	if _, err := NewClassifier(1.5, 0.001, 10); err == nil {
		t.Error("min_match > 1 accepted")
	}
	if _, err := NewClassifier(0.1, 0, 10); err == nil {
		t.Error("delta = 0 accepted")
	}
	if _, err := NewClassifier(0.1, 1, 10); err == nil {
		t.Error("delta = 1 accepted")
	}
	if _, err := NewClassifier(0.1, 0.001, 0); err == nil {
		t.Error("n = 0 accepted")
	}
}

func TestLabelString(t *testing.T) {
	if Frequent.String() != "frequent" || Infrequent.String() != "infrequent" || Ambiguous.String() != "ambiguous" {
		t.Error("Label.String broken")
	}
	if Label(9).String() == "" {
		t.Error("unknown label should still render")
	}
}

func TestQuickEpsilonMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		spread := r.Float64()
		delta := 0.0001 + 0.9*r.Float64()
		n := 1 + r.Intn(100000)
		e := Epsilon(spread, delta, n)
		// More samples never widen the bound; higher confidence never
		// narrows it; larger spread never narrows it.
		return Epsilon(spread, delta, n*2) <= e+1e-15 &&
			Epsilon(spread, delta/2, n) >= e-1e-15 &&
			Epsilon(spread*1.5, delta, n) >= e-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickChernoffCoverage(t *testing.T) {
	// Statistical sanity: for a Bernoulli(p) variable, the true mean must lie
	// within ε of the sample mean far more often than 1-δ (the bound is
	// conservative, §4.2).
	r := rand.New(rand.NewSource(6))
	const trials = 400
	misses := 0
	for trial := 0; trial < trials; trial++ {
		p := r.Float64()
		n := 500
		sum := 0.0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				sum++
			}
		}
		mu := sum / float64(n)
		eps := Epsilon(1, 0.01, n)
		if math.Abs(mu-p) > eps {
			misses++
		}
	}
	// δ=0.01 per side; even doubled and with slack, misses should be rare.
	if misses > trials/20 {
		t.Errorf("Chernoff bound violated %d/%d times", misses, trials)
	}
}
