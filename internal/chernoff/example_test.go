package chernoff_test

import (
	"fmt"

	"repro/internal/chernoff"
	"repro/internal/pattern"
)

// ExampleEpsilon reproduces the paper's §4 numeric example: with spread 1,
// 10000 samples and 99.99% confidence, the bound is about 0.0215.
func ExampleEpsilon() {
	fmt.Printf("%.4f\n", chernoff.Epsilon(1, 0.0001, 10000))
	// Output: 0.0215
}

// ExampleRestrictedSpread reproduces the §4.1 example: with symbol matches
// 0.1 and 0.05, the spread of d1 * d2 is 0.05 — cutting ε by 95% versus the
// default spread of 1.
func ExampleRestrictedSpread() {
	symbolMatch := []float64{0.1, 0.05}
	p := pattern.MustNew(0, pattern.Eternal, 1)
	r := chernoff.RestrictedSpread(p, symbolMatch)
	fmt.Printf("R=%.2f, epsilon shrinks %.0fx\n", r, chernoff.Epsilon(1, 0.001, 5000)/chernoff.Epsilon(r, 0.001, 5000))
	// Output: R=0.05, epsilon shrinks 20x
}
