// Package chernoff implements the additive Chernoff (Hoeffding) bound used
// by Phase 2 to classify patterns from a sample (Claim 4.1), together with
// the restricted spread of Claim 4.2 that tightens the bound by the minimum
// symbol match of a pattern.
package chernoff

import (
	"fmt"
	"math"

	"repro/internal/pattern"
)

// Epsilon returns ε = sqrt(R²·ln(1/δ) / (2n)): with probability 1-δ the true
// mean of a spread-R variable lies within ε of the mean of n samples.
func Epsilon(spread, delta float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(spread * spread * math.Log(1/delta) / (2 * float64(n)))
}

// SampleSize returns the smallest n for which Epsilon(spread, delta, n) <= eps
// — the planning inverse of Epsilon, used to size a sample for a target bound.
// The result is clamped to [1, math.MaxInt]: Epsilon(·, ·, 0) is infinite, so
// no n below 1 is ever sufficient, and for extreme eps/delta the unclamped
// value exceeds the int range (an out-of-range float→int conversion is
// implementation-defined in Go, so it must never reach the conversion).
func SampleSize(spread, delta, eps float64) int {
	if eps <= 0 {
		return math.MaxInt
	}
	n := math.Ceil(spread * spread * math.Log(1/delta) / (2 * eps * eps))
	// float64(math.MaxInt) is exactly 2^63; anything at or above it (or NaN,
	// from 0·∞ at degenerate inputs) saturates.
	if math.IsNaN(n) || n >= float64(math.MaxInt) {
		return math.MaxInt
	}
	if n < 1 {
		return 1
	}
	return int(n)
}

// RestrictedSpread implements Claim 4.2: the match of a pattern can never
// exceed the minimum database match of its constituent symbols, so that
// minimum is a valid (much tighter) spread R for the Chernoff bound.
// symbolMatch must hold the full-database match of every symbol (Phase 1's
// output). The restricted spread of a pattern with no concrete symbols is 1.
func RestrictedSpread(p pattern.Pattern, symbolMatch []float64) float64 {
	r := 1.0
	for _, d := range p {
		if d.IsEternal() {
			continue
		}
		if v := symbolMatch[d]; v < r {
			r = v
		}
	}
	return r
}

// Label is the three-way classification of a pattern from sample evidence.
type Label int8

const (
	// Infrequent: sample match < min_match - ε (infrequent w.p. 1-δ).
	Infrequent Label = iota
	// Ambiguous: within ε of the threshold; needs full-database probing.
	Ambiguous
	// Frequent: sample match > min_match + ε (frequent w.p. 1-δ).
	Frequent
)

// String renders the label for experiment output.
func (l Label) String() string {
	switch l {
	case Infrequent:
		return "infrequent"
	case Ambiguous:
		return "ambiguous"
	case Frequent:
		return "frequent"
	default:
		return fmt.Sprintf("Label(%d)", int8(l))
	}
}

// Classifier bundles the threshold and confidence of Claim 4.1.
type Classifier struct {
	MinMatch float64 // the user's min_match threshold
	Delta    float64 // 1 - confidence
	N        int     // sample size
}

// NewClassifier validates the parameters.
func NewClassifier(minMatch, delta float64, n int) (*Classifier, error) {
	if minMatch < 0 || minMatch > 1 {
		return nil, fmt.Errorf("chernoff: min_match %v outside [0,1]", minMatch)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("chernoff: delta %v outside (0,1)", delta)
	}
	if n <= 0 {
		return nil, fmt.Errorf("chernoff: sample size %d", n)
	}
	return &Classifier{MinMatch: minMatch, Delta: delta, N: n}, nil
}

// Epsilon returns the bound for a pattern of the given spread.
func (c *Classifier) Epsilon(spread float64) float64 {
	return Epsilon(spread, c.Delta, c.N)
}

// Classify labels a pattern by its sample match and spread (Claim 4.1).
func (c *Classifier) Classify(sampleMatch, spread float64) Label {
	eps := c.Epsilon(spread)
	switch {
	case sampleMatch > c.MinMatch+eps:
		return Frequent
	case sampleMatch < c.MinMatch-eps:
		return Infrequent
	default:
		return Ambiguous
	}
}
