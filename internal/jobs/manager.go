package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// Sentinel errors for the submission/lookup API.
var (
	// ErrClosed reports a submission to a draining manager.
	ErrClosed = errors.New("jobs: manager is draining")
	// ErrUnknownJob reports a lookup of an ID the journal has never seen.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrNotDone reports a result request for a job that has not completed.
	ErrNotDone = errors.New("jobs: job has not completed")
)

// Options configures a Manager. Zero values select the documented defaults.
type Options struct {
	// Dir is the journal directory (required): job records, result
	// documents, and per-job checkpoints live here, and a new Manager over
	// the same directory replays them.
	Dir string
	// WorkerSlots is the global worker-pool semaphore capacity — the total
	// mining parallelism across all jobs (default GOMAXPROCS). Every
	// running job holds at least one slot, so at most WorkerSlots jobs run
	// concurrently and a queued job waits at most for one slot to free.
	WorkerSlots int
	// MaxWorkersPerJob caps one job's slot grant (default WorkerSlots/2,
	// min 1), so a single heavy matrix cannot hoard the whole pool.
	MaxWorkersPerJob int
	// QueueCap bounds the queued (accepted, not yet running) jobs; beyond
	// it submissions are shed with ReasonQueueFull (default 64).
	QueueCap int
	// TenantRate and TenantBurst configure the per-tenant submission token
	// bucket (jobs/second; default rate 0 = unlimited, burst default 1).
	TenantRate  float64
	TenantBurst int
	// TenantMaxActive caps one tenant's queued+running jobs (0 = unlimited).
	TenantMaxActive int
	// DefaultPhase3Timeout bounds Phase 3 for specs that do not set their
	// own (0 = unlimited). Expiry degrades the job gracefully, never fails
	// it.
	DefaultPhase3Timeout time.Duration
	// DefaultPhase3Shards scatters Phase 3 probe scans over this many
	// database shards for specs that do not set their own (0 or 1 =
	// single-pass probes). Purely a tuning knob — results are identical.
	DefaultPhase3Shards int
	// DefaultRetryBase and DefaultRetryCap shape the retrying scanner's
	// full-jitter backoff for specs that do not set their own retry_base_ms
	// / retry_cap_ms (defaults: seqdb.RetryScanner's 10ms base, 1s cap).
	// lspserve exposes them as -retry-base / -retry-cap — the same knobs a
	// coordinator reuses for shard RPC retries.
	DefaultRetryBase time.Duration
	DefaultRetryCap  time.Duration
	// CompactRetain, when > 0, compacts the journal at startup: only the
	// newest CompactRetain terminal jobs keep their records and results
	// (running and queued jobs are always kept), so a long-lived server's
	// journal stops growing unboundedly. 0 disables compaction. The pass's
	// size-before/after shows up in Counters and /metrics.
	CompactRetain int
	// OpenDB opens a job's database scanner (default: seqdb.OpenAuto,
	// wrapped in a jittered RetryScanner when spec.Retries > 0, with backoff
	// shaped by the spec's retry_base_ms/retry_cap_ms or the manager's
	// defaults). Each job gets its own scanner — Scanner implementations are
	// not safe for concurrent scans. Injectable for fault-injection tests.
	OpenDB func(Spec) (seqdb.Scanner, error)
	// OpenMatrix opens a job's compatibility source (default: read
	// spec.Matrix as a text matrix).
	OpenMatrix func(Spec) (compat.Source, error)
	// Registry, when non-nil, carries each job's live telemetry under the
	// job ID while it runs (the /metrics aggregate reads it).
	Registry *telemetry.Registry
	// AfterCheckpoint, when non-nil, observes every checkpoint write of
	// every job — the hook kill-resume tests synchronize on.
	AfterCheckpoint func(id string, phase int)
	// Now is the manager's clock (default time.Now; injectable for
	// deterministic admission tests).
	Now func() time.Time
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.WorkerSlots <= 0 {
		o.WorkerSlots = runtime.GOMAXPROCS(0)
	}
	if o.MaxWorkersPerJob <= 0 {
		o.MaxWorkersPerJob = o.WorkerSlots / 2
		if o.MaxWorkersPerJob < 1 {
			o.MaxWorkersPerJob = 1
		}
	}
	if o.MaxWorkersPerJob > o.WorkerSlots {
		o.MaxWorkersPerJob = o.WorkerSlots
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.OpenDB == nil {
		base, capDelay := o.DefaultRetryBase, o.DefaultRetryCap
		o.OpenDB = func(spec Spec) (seqdb.Scanner, error) {
			return defaultOpenDB(spec, base, capDelay)
		}
	}
	if o.OpenMatrix == nil {
		o.OpenMatrix = defaultOpenMatrix
	}
}

func defaultOpenDB(spec Spec, base, capDelay time.Duration) (seqdb.Scanner, error) {
	db, err := seqdb.OpenAuto(spec.DB)
	if err != nil {
		return nil, err
	}
	if spec.Retries > 0 {
		if spec.RetryBaseMillis > 0 {
			base = time.Duration(spec.RetryBaseMillis) * time.Millisecond
		}
		if spec.RetryCapMillis > 0 {
			capDelay = time.Duration(spec.RetryCapMillis) * time.Millisecond
		}
		return &seqdb.RetryScanner{
			Inner:      db,
			MaxRetries: spec.Retries,
			BaseDelay:  base,
			MaxDelay:   capDelay,
			Jitter:     mrand.New(mrand.NewSource(spec.Seed)),
		}, nil
	}
	return db, nil
}

func defaultOpenMatrix(spec Spec) (compat.Source, error) {
	f, err := os.Open(spec.Matrix)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return compat.ReadFrom(f)
}

// job is the in-memory state of one journaled job.
type job struct {
	rec     record
	metrics *telemetry.Metrics
	// cancel stops the running mining context; nil until the job starts.
	cancel context.CancelFunc
	// userCanceled marks a DELETE-initiated cancellation, distinguishing it
	// from a drain (which must leave the journal record resumable).
	userCanceled bool
	// workers is the slot grant while running.
	workers int
	// finalTelemetry freezes the metrics snapshot at the terminal
	// transition.
	finalTelemetry *telemetry.Snapshot
	// done closes at the terminal transition (or drain interruption).
	done chan struct{}
}

// Counters is the manager's operational counter set, rendered by /metrics.
type Counters struct {
	Accepted            int64 `json:"accepted"`
	RejectedQueueFull   int64 `json:"rejected_queue_full"`
	RejectedRateLimited int64 `json:"rejected_rate_limited"`
	RejectedTenantBusy  int64 `json:"rejected_tenant_busy"`
	Completed           int64 `json:"completed"`
	Degraded            int64 `json:"degraded"`
	Failed              int64 `json:"failed"`
	Canceled            int64 `json:"canceled"`
	Replayed            int64 `json:"replayed"`
	CompactedJobs       int64 `json:"compacted_jobs,omitempty"`
	CompactBytesBefore  int64 `json:"compact_bytes_before,omitempty"`
	CompactBytesAfter   int64 `json:"compact_bytes_after,omitempty"`
	Queued              int   `json:"queued"`
	Running             int   `json:"running"`
	WorkerSlots         int   `json:"worker_slots"`
	SlotsInUse          int   `json:"slots_in_use"`
}

// Manager is the crash-survivable job engine: a bounded FIFO queue with
// admission control in front of a worker-slot-limited pool of mining runs,
// journaling every state transition. Construct with NewManager (which
// replays any existing journal), submit with Submit, and stop with Shutdown
// (graceful: running jobs checkpoint and stay resumable) — or test the crash
// path with Crash, which drops the process-level state without journaling,
// exactly what SIGKILL leaves behind.
type Manager struct {
	opts    Options
	journal *journal
	slots   chan struct{}

	mu      sync.Mutex
	jobs    map[string]*job
	queue   []*job
	tenants map[string]*tenantState
	closed  bool // draining or crashed: no new submissions
	drain   bool // graceful drain: interrupted jobs stay journaled running
	crashed bool // simulated kill: suppress all journal writes

	stop      context.CancelFunc
	stopped   context.Context
	wake      chan struct{}
	schedDone chan struct{}
	wg        sync.WaitGroup

	nonce   string
	seq     atomic.Int64
	compact compactStats

	accepted, rejQueue, rejRate, rejTenant atomic.Int64
	completed, degraded, failed, canceled  atomic.Int64
	replayed                               atomic.Int64
	runningCount                           atomic.Int64
}

type tenantState struct {
	bucket tokenBucket
	active int
}

// NewManager opens (or creates) the journal under opts.Dir, replays it —
// terminal jobs stay queryable, queued jobs re-enter the queue, and jobs the
// previous process died holding in "running" re-enter at the front of the
// queue to be resumed from their checkpoints — and starts the scheduler.
func NewManager(opts Options) (*Manager, error) {
	opts.setDefaults()
	jn, err := openJournal(opts.Dir)
	if err != nil {
		return nil, err
	}
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("jobs: nonce: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:      opts,
		journal:   jn,
		slots:     make(chan struct{}, opts.WorkerSlots),
		jobs:      make(map[string]*job),
		tenants:   make(map[string]*tenantState),
		stop:      cancel,
		stopped:   ctx,
		wake:      make(chan struct{}, 1),
		schedDone: make(chan struct{}),
		nonce:     hex.EncodeToString(nonce[:]),
	}
	if opts.CompactRetain > 0 {
		st, cerrs := jn.compact(opts.CompactRetain)
		for _, e := range cerrs {
			m.logf("journal compact: %v", e)
		}
		if st.RemovedFiles > 0 {
			m.logf("journal compact: dropped %d terminal jobs (%d files), %d -> %d bytes",
				st.RemovedJobs, st.RemovedFiles, st.BytesBefore, st.BytesAfter)
		}
		m.compact = st
	}
	recs, errs := jn.load()
	for _, e := range errs {
		m.logf("journal replay: %v", e)
	}
	var resumed []*job
	for _, rec := range recs {
		j := &job{rec: *rec, done: make(chan struct{})}
		m.jobs[rec.ID] = j
		switch rec.State {
		case StateDone, StateFailed, StateCanceled:
			close(j.done)
		case StateQueued:
			m.tenant(rec.Spec.Tenant).active++
			m.queue = append(m.queue, j)
		case StateRunning:
			// The previous process died mid-run. Its checkpoint (if any)
			// carries the completed scans; re-queue it ahead of everything
			// so the interrupted work finishes first.
			j.rec.State = StateQueued
			j.rec.Resumed++
			m.tenant(rec.Spec.Tenant).active++
			m.replayed.Add(1)
			resumed = append(resumed, j)
			m.logf("replaying interrupted job %s (resume %d)", rec.ID, j.rec.Resumed)
		default:
			m.logf("journal replay: %s: unknown state %q, ignoring", rec.ID, rec.State)
			close(j.done)
		}
	}
	m.queue = append(resumed, m.queue...)
	go m.schedule()
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// tenant returns (creating if needed) the named tenant's state. Callers hold
// m.mu.
func (m *Manager) tenant(name string) *tenantState {
	t, ok := m.tenants[name]
	if !ok {
		t = &tenantState{}
		m.tenants[name] = t
	}
	return t
}

func (m *Manager) nextID() string {
	return fmt.Sprintf("j%s-%06d", m.nonce, m.seq.Add(1))
}

// Submit validates, admits, journals, and enqueues one job. On acceptance
// the job is durable: the returned status's ID survives any crash from here
// on. Shed submissions return an *AdmissionError carrying the Retry-After
// hint; a draining manager returns ErrClosed.
func (m *Manager) Submit(spec Spec) (Status, error) {
	if err := spec.Normalize(); err != nil {
		return Status{}, err
	}
	if m.opts.OpenDB == nil { // unreachable; defaults are set
		return Status{}, fmt.Errorf("jobs: no DB opener")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Status{}, ErrClosed
	}
	if len(m.queue) >= m.opts.QueueCap {
		m.rejQueue.Add(1)
		// Heuristic wait: one slot's worth of queue drain per backlog
		// "round". The client only needs an order of magnitude.
		wait := time.Second * time.Duration(1+len(m.queue)/m.opts.WorkerSlots)
		if wait > 30*time.Second {
			wait = 30 * time.Second
		}
		return Status{}, &AdmissionError{Reason: ReasonQueueFull, RetryAfter: wait}
	}
	t := m.tenant(spec.Tenant)
	if max := m.opts.TenantMaxActive; max > 0 && t.active >= max {
		m.rejTenant.Add(1)
		return Status{}, &AdmissionError{Reason: ReasonTenantBusy, RetryAfter: time.Second}
	}
	if rate := m.opts.TenantRate; rate > 0 {
		ok, wait := t.bucket.take(m.opts.Now(), rate, m.opts.TenantBurst)
		if !ok {
			m.rejRate.Add(1)
			return Status{}, &AdmissionError{Reason: ReasonRateLimited, RetryAfter: wait}
		}
	}
	j := &job{
		rec: record{
			ID:          m.nextID(),
			Spec:        spec,
			State:       StateQueued,
			SubmittedMs: nowMs(m.opts.Now),
		},
		done: make(chan struct{}),
	}
	if err := m.persistLocked(&j.rec); err != nil {
		// Acceptance must be durable; an unjournalable job is not accepted.
		return Status{}, err
	}
	m.jobs[j.rec.ID] = j
	m.queue = append(m.queue, j)
	t.active++
	m.accepted.Add(1)
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return m.statusLocked(j), nil
}

// persistLocked journals the record unless the manager is simulating a
// crash. Callers hold m.mu.
func (m *Manager) persistLocked(rec *record) error {
	if m.crashed {
		return nil
	}
	return m.journal.saveRecord(rec)
}

// schedule is the dispatch loop: FIFO over the queue, one blocking
// worker-slot acquisition per job (the isolation bound — a queued job waits
// for exactly one slot, never for a particular heavy job to finish), plus
// whatever extra slots are free up to the job's capped request.
func (m *Manager) schedule() {
	defer close(m.schedDone)
	for {
		if !m.hasQueued() {
			select {
			case <-m.wake:
				continue
			case <-m.stopped.Done():
				return
			}
		}
		// Acquire the slot before popping: a job waiting for capacity stays
		// in the queue, visible to queue accounting (QueuePos, the queue
		// bound) the whole time.
		select {
		case m.slots <- struct{}{}:
		case <-m.stopped.Done():
			return
		}
		j := m.popQueued()
		if j == nil {
			m.releaseSlots(1)
			continue
		}
		granted := 1
		want := j.rec.Spec.Workers
		if want > m.opts.MaxWorkersPerJob {
			want = m.opts.MaxWorkersPerJob
		}
	extras:
		for granted < want {
			select {
			case m.slots <- struct{}{}:
				granted++
			default:
				break extras
			}
		}
		if !m.startJob(j, granted) {
			m.releaseSlots(granted)
		}
	}
}

func (m *Manager) hasQueued() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue) > 0
}

func (m *Manager) popQueued() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) > 0 {
		j := m.queue[0]
		m.queue = m.queue[1:]
		if j.userCanceled {
			m.finishLocked(j, StateCanceled, "canceled before start", nil, nil)
			continue
		}
		return j
	}
	return nil
}

func (m *Manager) releaseSlots(n int) {
	for i := 0; i < n; i++ {
		<-m.slots
	}
}

// startJob transitions a popped job to running and launches its goroutine.
// Returns false (slots must be released by the caller) when the job was
// canceled between pop and start or the manager is stopping.
func (m *Manager) startJob(j *job, workers int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.userCanceled {
		m.finishLocked(j, StateCanceled, "canceled before start", nil, nil)
		return false
	}
	if m.closed || m.stopped.Err() != nil {
		// Shutdown/crash won the race: leave the job queued (journaled
		// queued or running), where replay will pick it up.
		m.queue = append([]*job{j}, m.queue...)
		return false
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.workers = workers
	if m.opts.Registry != nil {
		j.metrics = m.opts.Registry.Get(j.rec.ID)
	} else {
		j.metrics = &telemetry.Metrics{}
	}
	j.rec.State = StateRunning
	j.rec.StartedMs = nowMs(m.opts.Now)
	if err := m.persistLocked(&j.rec); err != nil {
		m.logf("job %s: journal running: %v", j.rec.ID, err)
	}
	m.runningCount.Add(1)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.releaseSlots(workers)
		defer m.runningCount.Add(-1)
		res, doc, err := m.mine(ctx, j, workers)
		m.finishRun(j, res, doc, err)
	}()
	return true
}

// mine runs (or resumes) one job's pipeline and builds its result document.
func (m *Manager) mine(ctx context.Context, j *job, workers int) (*core.Result, []byte, error) {
	spec := j.rec.Spec
	db, err := m.opts.OpenDB(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("open database: %w", err)
	}
	defer closeIfCloser(db)
	c, err := m.opts.OpenMatrix(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("open matrix: %w", err)
	}
	fin, err := parseFinalizer(spec.Finalizer)
	if err != nil {
		return nil, nil, err
	}
	ckptPath := m.journal.checkpointPath(j.rec.ID)
	policy := &core.CheckpointPolicy{Path: ckptPath, Seed: spec.Seed}
	if hook := m.opts.AfterCheckpoint; hook != nil {
		id := j.rec.ID
		policy.AfterWrite = func(phase int) { hook(id, phase) }
	}
	phase3 := m.opts.DefaultPhase3Timeout
	if spec.Phase3TimeoutMillis > 0 {
		phase3 = time.Duration(spec.Phase3TimeoutMillis) * time.Millisecond
	}
	shards := m.opts.DefaultPhase3Shards
	if spec.Phase3Shards > 0 {
		shards = spec.Phase3Shards
	}
	var p2e core.Phase2Engine
	if spec.Phase2Engine == "growth" {
		p2e = core.Phase2Growth
	}
	cfg := core.Config{
		MinMatch:              spec.MinMatch,
		Delta:                 spec.Delta,
		SampleSize:            spec.Sample,
		MaxLen:                spec.MaxLen,
		MaxGap:                spec.MaxGap,
		MaxCandidatesPerLevel: spec.MaxCandidates,
		MemBudget:             spec.MemBudget,
		Finalizer:             fin,
		Workers:               workers,
		Phase3Shards:          shards,
		Phase2Engine:          p2e,
		Metrics:               j.metrics,
		Checkpoint:            policy,
		PhaseTimeouts:         core.PhaseTimeouts{Phase3: phase3},
	}

	var res *core.Result
	if m.journal.hasCheckpoint(j.rec.ID) {
		// Resume rebuilds the RNG from the snapshot's recorded seed and
		// draw count; cfg.Rng stays nil.
		res, err = core.Resume(ctx, ckptPath, db, c, cfg)
		var pe *core.PhaseError
		if err != nil && !errors.As(err, &pe) {
			// The snapshot, not the run, is the problem (corrupt file,
			// incompatible config, unreadable). Degrade to a fresh run
			// rather than wedging the job forever.
			m.logf("job %s: checkpoint unusable (%v); restarting fresh", j.rec.ID, err)
			_ = os.Remove(ckptPath)
			res, err = nil, nil
		} else if err == nil {
			m.logf("job %s: resumed from phase %d, %d scans skipped", j.rec.ID, res.ResumedFrom, res.ScansSkipped)
		}
	}
	if res == nil && err == nil {
		cfg.Rng = mrand.New(mrand.NewSource(spec.Seed))
		if spec.Engine == "sweep" {
			res, err = core.MineSweepContext(ctx, db, c, cfg)
		} else {
			res, err = core.MineContext(ctx, db, c, cfg)
		}
	}
	if err != nil {
		return res, nil, err
	}
	doc, err := buildResult(res, spec, db.Len(), c.Size())
	if err != nil {
		return res, nil, err
	}
	return res, doc, nil
}

func closeIfCloser(db seqdb.Scanner) {
	if c, ok := db.(interface{ Close() error }); ok {
		c.Close()
	}
}

// buildResult renders the deterministic result document (see Result).
func buildResult(res *core.Result, spec Spec, sequences, alphabetSize int) ([]byte, error) {
	rep, err := core.NewReport(res, spec.MinMatch, sequences, pattern.GenericAlphabet(alphabetSize))
	if err != nil {
		return nil, err
	}
	out := Result{
		Schema:     ResultSchema,
		MinMatch:   rep.MinMatch,
		Sequences:  rep.Sequences,
		SampleSize: rep.SampleSize,
		Scans:      rep.Scans,
		Degraded:   rep.Degraded,
		Frequent:   rep.Frequent,
		Unresolved: rep.Unresolved,
	}
	if out.Frequent == nil {
		out.Frequent = []core.PatternReport{}
	}
	doc, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// finishRun settles a finished mining goroutine into its terminal state.
func (m *Manager) finishRun(j *job, res *core.Result, doc []byte, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case err == nil:
		degraded := res != nil && res.Degraded
		m.finishLocked(j, StateDone, "", doc, res)
		if degraded {
			m.degraded.Add(1)
		}
	case errors.Is(err, context.Canceled) && j.userCanceled:
		m.finishLocked(j, StateCanceled, "canceled by request", nil, res)
	case errors.Is(err, context.Canceled) && (m.drain || m.crashed):
		// Interrupted by shutdown: the journal record stays "running", so
		// the next process resumes the job from its final checkpoint. Only
		// the in-memory view settles.
		j.finalTelemetry = m.snapshotLocked(j, res)
		m.tenant(j.rec.Spec.Tenant).active--
		m.unregisterLocked(j)
		close(j.done)
	default:
		m.finishLocked(j, StateFailed, err.Error(), nil, res)
	}
}

// finishLocked applies a terminal transition: journal the result document
// (before the record, so a crash between the two replays to the identical
// document), journal the record, drop the checkpoint when it has no future,
// and settle the in-memory job. Callers hold m.mu.
func (m *Manager) finishLocked(j *job, state State, errMsg string, doc []byte, res *core.Result) {
	j.rec.State = state
	j.rec.Error = errMsg
	j.rec.Degraded = res != nil && res.Degraded
	j.rec.FinishedMs = nowMs(m.opts.Now)
	if doc != nil && !m.crashed {
		if err := m.journal.saveResult(j.rec.ID, doc); err != nil {
			m.logf("job %s: journal result: %v", j.rec.ID, err)
		}
	}
	if err := m.persistLocked(&j.rec); err != nil {
		m.logf("job %s: journal %s: %v", j.rec.ID, state, err)
	}
	// A degraded job keeps its checkpoint: it holds the probe progress a
	// future resubmission could finish from. Other terminal states drop it.
	if !m.crashed && !(state == StateDone && j.rec.Degraded) {
		m.journal.removeCheckpoint(j.rec.ID)
	}
	j.finalTelemetry = m.snapshotLocked(j, res)
	m.tenant(j.rec.Spec.Tenant).active--
	m.unregisterLocked(j)
	switch state {
	case StateDone:
		m.completed.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCanceled:
		m.canceled.Add(1)
	}
	close(j.done)
}

func (m *Manager) snapshotLocked(j *job, res *core.Result) *telemetry.Snapshot {
	if j.metrics == nil {
		return nil
	}
	snap := j.metrics.Snapshot()
	if res != nil {
		snap.Retry = res.ScanStats
		snap.Degraded = res.Degraded
	}
	return &snap
}

func (m *Manager) unregisterLocked(j *job) {
	if m.opts.Registry != nil && j.metrics != nil {
		m.opts.Registry.Remove(j.rec.ID)
	}
}

// Cancel requests cancellation of a job. Queued jobs settle immediately;
// running jobs abort within one sequence block (their context is canceled)
// and settle when the mining goroutine returns. Cancel is idempotent and
// returns the job's current status.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrUnknownJob
	}
	if j.rec.State.Terminal() {
		return m.statusLocked(j), nil
	}
	j.userCanceled = true
	if j.rec.State == StateQueued {
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.finishLocked(j, StateCanceled, "canceled by request", nil, nil)
		return m.statusLocked(j), nil
	}
	if j.cancel != nil {
		j.cancel()
	}
	return m.statusLocked(j), nil
}

// Status returns a job's current status.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrUnknownJob
	}
	return m.statusLocked(j), nil
}

// Result returns a done job's result document (ErrNotDone until then).
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrUnknownJob
	}
	state := j.rec.State
	m.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("%w: state %s", ErrNotDone, state)
	}
	return m.journal.loadResult(id)
}

// Wait blocks until the job settles (terminal state or drain interruption)
// or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return m.Status(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// List returns every known job's status, oldest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.statusLocked(j))
	}
	sortStatuses(out)
	return out
}

func (m *Manager) statusLocked(j *job) Status {
	st := Status{
		ID:          j.rec.ID,
		Tenant:      j.rec.Spec.Tenant,
		State:       j.rec.State,
		Degraded:    j.rec.Degraded,
		Error:       j.rec.Error,
		Resumed:     j.rec.Resumed,
		SubmittedMs: j.rec.SubmittedMs,
		StartedMs:   j.rec.StartedMs,
		FinishedMs:  j.rec.FinishedMs,
		Spec:        j.rec.Spec,
	}
	if j.rec.State == StateQueued {
		for i, q := range m.queue {
			if q == j {
				st.QueuePos = i + 1
				break
			}
		}
	}
	if j.rec.State == StateRunning {
		st.Workers = j.workers
	}
	switch {
	case j.finalTelemetry != nil:
		st.Telemetry = j.finalTelemetry
	case j.metrics != nil:
		snap := j.metrics.Snapshot()
		st.Telemetry = &snap
	}
	return st
}

// Counters returns the operational counter snapshot.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	queued := len(m.queue)
	m.mu.Unlock()
	return Counters{
		Accepted:            m.accepted.Load(),
		RejectedQueueFull:   m.rejQueue.Load(),
		RejectedRateLimited: m.rejRate.Load(),
		RejectedTenantBusy:  m.rejTenant.Load(),
		Completed:           m.completed.Load(),
		Degraded:            m.degraded.Load(),
		Failed:              m.failed.Load(),
		Canceled:            m.canceled.Load(),
		Replayed:            m.replayed.Load(),
		CompactedJobs:       int64(m.compact.RemovedJobs),
		CompactBytesBefore:  m.compact.BytesBefore,
		CompactBytesAfter:   m.compact.BytesAfter,
		Queued:              queued,
		Running:             int(m.runningCount.Load()),
		WorkerSlots:         m.opts.WorkerSlots,
		SlotsInUse:          len(m.slots),
	}
}

// Draining reports whether the manager has stopped accepting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Shutdown drains gracefully: submissions stop (ErrClosed), running jobs'
// contexts are canceled — the pipeline flushes a final checkpoint and
// returns within one sequence block — and their journal records deliberately
// stay "running", so the next NewManager over the same directory resumes
// them. Queued jobs stay journaled queued. Shutdown returns when every
// goroutine has settled or ctx expires.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.drain = true
	cancels := m.runningCancelsLocked()
	m.mu.Unlock()
	m.stop()
	for _, c := range cancels {
		c()
	}
	return m.await(ctx)
}

// Crash simulates a SIGKILL for tests: every goroutine is stopped and — the
// crucial difference from Shutdown — nothing more is journaled, so the disk
// state is exactly what a real kill would leave: records at their last
// durable transition, checkpoints at their last completed write. The manager
// is unusable afterwards; open a new one over the same directory to replay.
func (m *Manager) Crash() {
	m.mu.Lock()
	m.closed = true
	m.crashed = true
	cancels := m.runningCancelsLocked()
	m.mu.Unlock()
	m.stop()
	for _, c := range cancels {
		c()
	}
	_ = m.await(context.Background())
}

func (m *Manager) runningCancelsLocked() []context.CancelFunc {
	var cancels []context.CancelFunc
	for _, j := range m.jobs {
		if j.rec.State == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	return cancels
}

func (m *Manager) await(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		<-m.schedDone
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown: %w", ctx.Err())
	}
}

func sortStatuses(sts []Status) {
	for i := 1; i < len(sts); i++ {
		for k := i; k > 0 && less(sts[k], sts[k-1]); k-- {
			sts[k], sts[k-1] = sts[k-1], sts[k]
		}
	}
}

func less(a, b Status) bool {
	if a.SubmittedMs != b.SubmittedMs {
		return a.SubmittedMs < b.SubmittedMs
	}
	return a.ID < b.ID
}
