package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/seqdb"
	"repro/internal/testutil"
)

func startAuthedServer(t *testing.T, token string) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := NewManager(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&Server{Manager: m, AuthToken: token}).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m, srv
}

func doJSON(t *testing.T, method, url string, body []byte, hdr map[string]string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp, doc
}

// TestServerAuthToken: every /v1 route requires the bearer token when one is
// configured, rejecting mismatches 401 with the machine-readable reason,
// while health and metrics stay open for probes and scrapers.
func TestServerAuthToken(t *testing.T) {
	_, srv := startAuthedServer(t, "s3cret")

	for _, hdr := range []map[string]string{
		nil,
		{"Authorization": "Bearer wrong"},
		{"Authorization": "s3cret"}, // missing the Bearer prefix
	} {
		resp, doc := doJSON(t, "GET", srv.URL+"/v1/jobs", nil, hdr)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("header %v: status %d, want 401", hdr, resp.StatusCode)
		}
		if doc["reason"] != ReasonUnauthorized {
			t.Fatalf("header %v: reason %v, want %q", hdr, doc["reason"], ReasonUnauthorized)
		}
	}

	if resp, _ := doJSON(t, "GET", srv.URL+"/v1/jobs", nil,
		map[string]string{"Authorization": "Bearer s3cret"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid token: status %d, want 200", resp.StatusCode)
	}
	for _, open := range []string{"/healthz", "/metrics"} {
		if resp, _ := doJSON(t, "GET", srv.URL+open, nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s behind auth: status %d, want 200", open, resp.StatusCode)
		}
	}
}

// TestServerTenantHeader: a submission whose X-LSP-Tenant header contradicts
// the spec's tenant is refused 403 with a machine-readable reason; a header
// over an empty spec tenant is adopted as the job's tenant.
func TestServerTenantHeader(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 20, 0.2)
	m, srv := startAuthedServer(t, "")

	spec := testSpec(dbPath, matrixPath)
	spec.Tenant = "alice"
	body, _ := json.Marshal(spec)
	resp, doc := doJSON(t, "POST", srv.URL+"/v1/jobs", body,
		map[string]string{TenantHeader: "mallory", "Content-Type": "application/json"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("mismatched tenant header: status %d, want 403", resp.StatusCode)
	}
	if doc["reason"] != ReasonTenantMismatch {
		t.Fatalf("reason %v, want %q", doc["reason"], ReasonTenantMismatch)
	}

	// A matching header is fine; a header over an anonymous spec is adopted.
	resp, _ = doJSON(t, "POST", srv.URL+"/v1/jobs", body,
		map[string]string{TenantHeader: "alice", "Content-Type": "application/json"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("matching tenant header: status %d, want 202", resp.StatusCode)
	}
	anon := testSpec(dbPath, matrixPath)
	body, _ = json.Marshal(anon)
	resp, doc = doJSON(t, "POST", srv.URL+"/v1/jobs", body,
		map[string]string{TenantHeader: "alice", "Content-Type": "application/json"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("adopted tenant header: status %d, want 202", resp.StatusCode)
	}
	id, _ := doc["id"].(string)
	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "alice" {
		t.Fatalf("adopted tenant = %q, want alice", st.Tenant)
	}
}

// TestJournalCompactionAtStartup: a manager started with CompactRetain keeps
// only the newest terminal jobs (records, results, checkpoints), sweeps
// orphans, never touches live jobs, and reports the size-before/after
// numbers through Counters and /metrics.
func TestJournalCompactionAtStartup(t *testing.T) {
	dir := t.TempDir()
	jn, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, state State, finished int64) {
		rec := &record{ID: id, State: state, SubmittedMs: finished - 10, FinishedMs: finished,
			Spec: Spec{DB: "x.lsq", Matrix: "x.compat", MinMatch: 0.5, MaxLen: 2}}
		if state == StateQueued {
			rec.FinishedMs = 0
		}
		if err := jn.saveRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	mk("old-1", StateDone, 100)
	mk("old-2", StateFailed, 200)
	mk("new-1", StateDone, 300)
	for _, id := range []string{"old-1", "new-1"} {
		if err := jn.saveResult(id, []byte(`{"schema":"lspserve-result/v1"}`)); err != nil {
			t.Fatal(err)
		}
	}
	// Orphans: result and checkpoint files with no record at all.
	if err := jn.saveResult("ghost", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jn.checkpointPath("ghost"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(Options{Dir: dir, CompactRetain: 1,
		OpenDB: func(Spec) (seqdb.Scanner, error) { return nil, os.ErrNotExist }})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())

	c := m.Counters()
	if c.CompactedJobs != 2 {
		t.Errorf("CompactedJobs = %d, want 2", c.CompactedJobs)
	}
	if c.CompactBytesAfter >= c.CompactBytesBefore {
		t.Errorf("journal did not shrink: before %d, after %d", c.CompactBytesBefore, c.CompactBytesAfter)
	}
	for _, gone := range []string{jn.recordPath("old-1"), jn.resultPath("old-1"),
		jn.recordPath("old-2"), jn.resultPath("ghost"), jn.checkpointPath("ghost")} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Errorf("%s survived compaction", gone)
		}
	}
	for _, kept := range []string{jn.recordPath("new-1"), jn.resultPath("new-1")} {
		if _, err := os.Stat(kept); err != nil {
			t.Errorf("%s did not survive compaction: %v", kept, err)
		}
	}
	if st, err := m.Status("new-1"); err != nil || st.State != StateDone {
		t.Errorf("retained job unqueryable: %v, %v", st, err)
	}
}

// TestSpecRetryKnobs: the journaled spec's backoff overrides are validated
// and applied to the retrying scanner the job's database is wrapped in.
func TestSpecRetryKnobs(t *testing.T) {
	bad := []Spec{
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 2, RetryBaseMillis: -1},
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 2, RetryCapMillis: -1},
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 2, RetryBaseMillis: 100, RetryCapMillis: 50},
	}
	for i, spec := range bad {
		if err := spec.Normalize(); err == nil {
			t.Errorf("bad spec %d normalized without error", i)
		}
	}

	dbPath, _ := testWorld(t, testutil.Seed(t), 10, 0.2)
	spec := Spec{DB: dbPath, Retries: 2, Seed: 1, RetryBaseMillis: 7, RetryCapMillis: 90}
	db, err := defaultOpenDB(spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := db.(*seqdb.RetryScanner)
	if !ok {
		t.Fatalf("retries>0 did not wrap the database: %T", db)
	}
	if rs.BaseDelay != 7*time.Millisecond || rs.MaxDelay != 90*time.Millisecond {
		t.Errorf("spec overrides not applied: base %v cap %v", rs.BaseDelay, rs.MaxDelay)
	}
	// Manager defaults apply when the spec sets nothing.
	spec.RetryBaseMillis, spec.RetryCapMillis = 0, 0
	db, err = defaultOpenDB(spec, 3*time.Millisecond, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rs = db.(*seqdb.RetryScanner)
	if rs.BaseDelay != 3*time.Millisecond || rs.MaxDelay != 40*time.Millisecond {
		t.Errorf("manager defaults not applied: base %v cap %v", rs.BaseDelay, rs.MaxDelay)
	}
}
