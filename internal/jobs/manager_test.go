package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/compat"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// testWorld writes a small noisy protein database and its compatibility
// matrix to disk, returning their paths — the on-disk fixture every manager
// test submits jobs against.
func testWorld(t *testing.T, seed int64, n int, alpha float64) (dbPath, matrixPath string) {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(seed))
	const m = 6
	std, _, err := datagen.Protein(datagen.ProteinConfig{
		N: n, M: m, MinLen: 10, MaxLen: 14,
		Motifs:    []pattern.Pattern{pattern.MustNew(0, 1, 2)},
		PlantProb: 0.7,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := datagen.ApplyUniformNoise(std, m, alpha, rng)
	if err != nil {
		t.Fatal(err)
	}
	dbPath = filepath.Join(dir, "world.lsq")
	if err := seqdb.WriteFile(dbPath, noisy); err != nil {
		t.Fatal(err)
	}
	c, err := compat.UniformNoise(m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	matrixPath = filepath.Join(dir, "world.compat")
	f, err := os.Create(matrixPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return dbPath, matrixPath
}

// testSpec is the standard job over the test world: small sample, modest
// thresholds, deterministic seed.
func testSpec(dbPath, matrixPath string) Spec {
	return Spec{
		DB:       dbPath,
		Matrix:   matrixPath,
		MinMatch: 0.30,
		MaxLen:   6,
		Delta:    1e-2,
		Sample:   30,
		Seed:     2,
	}
}

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m
}

func waitDone(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

func TestSubmitRunsToCompletion(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	reg := telemetry.NewRegistry()
	m := newTestManager(t, Options{Registry: reg})
	st, err := m.Submit(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("submitted state = %s", st.State)
	}
	final := waitDone(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
	if final.Telemetry == nil || final.Telemetry.TotalScans < 1 {
		t.Fatalf("final telemetry missing or empty: %+v", final.Telemetry)
	}
	doc, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatalf("result doc does not parse: %v", err)
	}
	if res.Schema != ResultSchema {
		t.Errorf("schema = %q, want %q", res.Schema, ResultSchema)
	}
	if len(res.Frequent) == 0 {
		t.Error("no frequent patterns in a world with a planted motif")
	}
	if c := m.Counters(); c.Accepted != 1 || c.Completed != 1 {
		t.Errorf("counters = %+v, want 1 accepted, 1 completed", c)
	}
	// The job's collector is unregistered after the terminal transition.
	if names := reg.Names(); len(names) != 0 {
		t.Errorf("registry still holds %v after completion", names)
	}
}

func TestResultBeforeDone(t *testing.T) {
	m := newTestManager(t, Options{})
	if _, err := m.Result("no-such-job"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Result(unknown) = %v, want ErrUnknownJob", err)
	}
	if _, err := m.Status("no-such-job"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Status(unknown) = %v, want ErrUnknownJob", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Options{})
	bad := []Spec{
		{},                                    // no db
		{DB: "x"},                             // no matrix
		{DB: "x", Matrix: "y"},                // no min_match
		{DB: "x", Matrix: "y", MinMatch: 2},   // out of range
		{DB: "x", Matrix: "y", MinMatch: 0.5}, // no max_len
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 3, Engine: "warp"},                               // bad engine
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 3, Finalizer: "guesswork"},                       // bad finalizer
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 3, Phase3TimeoutMillis: -1},                      // negative budget
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 3, Phase2Engine: "prefixspan"},                   // bad phase2 engine
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 3, Engine: "sweep", Phase2Engine: "growth"},      // growth needs candidates
		{DB: "x", Matrix: "y", MinMatch: 0.5, MaxLen: 3, Engine: "candidates", Phase2Engine: "GROWTH"}, // names are case-sensitive
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	if c := m.Counters(); c.Accepted != 0 {
		t.Errorf("invalid specs counted as accepted: %+v", c)
	}
}

// TestGrowthEngineJob submits the same spec under both Phase 2 engines and
// demands identical result documents modulo timings: the growth engine is a
// pure execution-strategy knob.
func TestGrowthEngineJob(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	m := newTestManager(t, Options{})
	results := make(map[string]Result)
	for _, engine := range []string{"levelwise", "growth"} {
		spec := testSpec(dbPath, matrixPath)
		spec.Phase2Engine = engine
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		final := waitDone(t, m, st.ID)
		if final.State != StateDone {
			t.Fatalf("%s: state = %s (error %q)", engine, final.State, final.Error)
		}
		doc, err := m.Result(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := json.Unmarshal(doc, &res); err != nil {
			t.Fatal(err)
		}
		results[engine] = res
	}
	lw, gr := results["levelwise"], results["growth"]
	if len(gr.Frequent) == 0 {
		t.Fatal("growth job found no frequent patterns in a world with a planted motif")
	}
	if len(lw.Frequent) != len(gr.Frequent) {
		t.Fatalf("frequent counts differ: levelwise %d, growth %d", len(lw.Frequent), len(gr.Frequent))
	}
	for i := range lw.Frequent {
		l, g := lw.Frequent[i], gr.Frequent[i]
		if l.Key != g.Key || l.Border != g.Border || l.Match != g.Match {
			t.Errorf("pattern %d differs: levelwise %+v, growth %+v", i, l, g)
		}
	}
	if lw.Scans != gr.Scans {
		t.Errorf("scan counts differ: levelwise %d, growth %d", lw.Scans, gr.Scans)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	// One slot and a slow job in front keeps the second job queued.
	m := newTestManager(t, Options{
		WorkerSlots: 1,
		OpenDB:      throttledOpener(500 * time.Microsecond),
	})
	first, err := m.Submit(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Submit(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The cancel either settled immediately (still queued) or lands when the
	// scheduler pops it; both end canceled.
	st = waitDone(t, m, second.ID)
	if st.State != StateCanceled {
		t.Fatalf("canceled queued job state = %s", st.State)
	}
	if st := waitDone(t, m, first.ID); st.State != StateDone {
		t.Fatalf("first job state = %s (error %q)", st.State, st.Error)
	}
}

func TestCancelRunningJob(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	started := make(chan string, 1)
	m := newTestManager(t, Options{
		OpenDB: throttledOpener(time.Millisecond),
		AfterCheckpoint: func(id string, phase int) {
			select {
			case started <- id:
			default:
			}
		},
	})
	st, err := m.Submit(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never wrote a checkpoint")
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	if _, err := m.Result(st.ID); !errors.Is(err, ErrNotDone) {
		t.Errorf("Result(canceled) = %v, want ErrNotDone", err)
	}
	if c := m.Counters(); c.Canceled != 1 {
		t.Errorf("counters = %+v, want 1 canceled", c)
	}
}

// throttledOpener opens the spec's database and slows each sequence by
// perSeq, so tests can reliably catch jobs mid-run.
func throttledOpener(perSeq time.Duration) func(Spec) (seqdb.Scanner, error) {
	return func(spec Spec) (seqdb.Scanner, error) {
		db, err := seqdb.OpenAuto(spec.DB)
		if err != nil {
			return nil, err
		}
		return &slowScanner{Inner: db, PerSeq: perSeq}, nil
	}
}

// slowScanner is a minimal in-package throttle (internal/faults has the
// full-featured one; duplicating three methods here avoids an import cycle
// in faults' own tests, which import this package).
type slowScanner struct {
	Inner  seqdb.Scanner
	PerSeq time.Duration
}

func (s *slowScanner) Len() int    { return s.Inner.Len() }
func (s *slowScanner) Scans() int  { return s.Inner.Scans() }
func (s *slowScanner) ResetScans() { s.Inner.ResetScans() }
func (s *slowScanner) Path() string {
	if p, ok := s.Inner.(interface{ Path() string }); ok {
		return p.Path()
	}
	return ""
}

func (s *slowScanner) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}

func (s *slowScanner) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return seqdb.ScanContext(ctx, s.Inner, func(id int, seq []pattern.Symbol) error {
		timer := time.NewTimer(s.PerSeq)
		defer timer.Stop()
		if ctx != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		} else {
			<-timer.C
		}
		return fn(id, seq)
	})
}

func TestDegradedJobCompletesWithExitContract(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 60, 0.2)
	m := newTestManager(t, Options{OpenDB: throttledOpener(2 * time.Millisecond)})
	spec := testSpec(dbPath, matrixPath)
	// A 1ms Phase 3 budget against a 2ms-per-sequence store expires on the
	// first probe scan.
	spec.Phase3TimeoutMillis = 1
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done: deadline expiry degrades, never fails", final.State, final.Error)
	}
	if !final.Degraded {
		t.Fatal("job not marked degraded")
	}
	if final.Telemetry == nil || !final.Telemetry.Degraded {
		t.Error("telemetry snapshot not marked degraded")
	}
	doc, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("result document not marked degraded")
	}
	if c := m.Counters(); c.Degraded != 1 || c.Completed != 1 {
		t.Errorf("counters = %+v, want degraded=1 completed=1", c)
	}
	// A degraded job keeps its checkpoint (the probe progress is resumable).
	if !m.journal.hasCheckpoint(st.ID) {
		t.Error("degraded job's checkpoint was dropped")
	}
}

// TestKillResumeBitIdentical is the tentpole acceptance test: a manager is
// killed (Crash — journaling suppressed, exactly SIGKILL's disk state) with
// two jobs mid-flight, each past at least one checkpoint; a new manager over
// the same directory replays the journal, resumes both from their
// checkpoints, and must produce result documents byte-identical to an
// uninterrupted manager's.
func TestKillResumeBitIdentical(t *testing.T) {
	dbPath, matrixPath := testWorld(t, 77, 60, 0.2)
	specA := testSpec(dbPath, matrixPath)
	specA.Seed = 2
	specB := testSpec(dbPath, matrixPath)
	specB.Seed = 5
	specB.MinMatch = 0.25

	// Uninterrupted baseline.
	base := newTestManager(t, Options{WorkerSlots: 2, MaxWorkersPerJob: 1})
	baseA, err := base.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	baseB, err := base.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, base, baseA.ID); st.State != StateDone {
		t.Fatalf("baseline A: %s (%s)", st.State, st.Error)
	}
	if st := waitDone(t, base, baseB.ID); st.State != StateDone {
		t.Fatalf("baseline B: %s (%s)", st.State, st.Error)
	}
	wantA, err := base.Result(baseA.ID)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := base.Result(baseB.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Crash run: both jobs in flight, each past >= 1 checkpoint, then kill.
	dir := t.TempDir()
	var mu sync.Mutex
	seen := map[string]int{}
	bothCheckpointed := make(chan struct{})
	var once sync.Once
	opts := Options{
		Dir:              dir,
		WorkerSlots:      2,
		MaxWorkersPerJob: 1,
		OpenDB:           throttledOpener(time.Millisecond),
		AfterCheckpoint: func(id string, phase int) {
			mu.Lock()
			seen[id]++
			n := len(seen)
			mu.Unlock()
			if n >= 2 {
				once.Do(func() { close(bothCheckpointed) })
			}
		},
	}
	victim, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	killA, err := victim.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	killB, err := victim.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-bothCheckpointed:
	case <-time.After(60 * time.Second):
		t.Fatal("jobs never both checkpointed")
	}
	victim.Crash()

	// The disk must show both jobs still "running" — the kill beat their
	// terminal transitions.
	for _, id := range []string{killA.ID, killB.ID} {
		data, err := os.ReadFile(filepath.Join(dir, "jobs", id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.State != StateRunning {
			t.Fatalf("journaled state of %s after crash = %s, want running", id, rec.State)
		}
	}

	// Restart over the same directory: replay must resume both to done.
	opts.AfterCheckpoint = nil
	revived := newTestManager(t, opts)
	if c := revived.Counters(); c.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", c.Replayed)
	}
	for _, tc := range []struct {
		id   string
		want []byte
	}{{killA.ID, wantA}, {killB.ID, wantB}} {
		st := waitDone(t, revived, tc.id)
		if st.State != StateDone {
			t.Fatalf("revived %s: state %s (%s)", tc.id, st.State, st.Error)
		}
		if st.Resumed < 1 {
			t.Errorf("revived %s: Resumed = %d, want >= 1", tc.id, st.Resumed)
		}
		got, err := revived.Result(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, tc.want) {
			t.Errorf("revived %s: result differs from the uninterrupted run\ngot:  %s\nwant: %s",
				tc.id, got, tc.want)
		}
	}
}

// TestGracefulShutdownLeavesJobsResumable covers the drain path: Shutdown
// cancels running jobs but deliberately leaves their journal records
// "running", so the next manager finishes them.
func TestGracefulShutdownLeavesJobsResumable(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 60, 0.2)
	dir := t.TempDir()
	checkpointed := make(chan struct{})
	var once sync.Once
	opts := Options{
		Dir:    dir,
		OpenDB: throttledOpener(time.Millisecond),
		AfterCheckpoint: func(id string, phase int) {
			once.Do(func() { close(checkpointed) })
		},
	}
	first, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := first.Submit(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-checkpointed:
	case <-time.After(30 * time.Second):
		t.Fatal("job never checkpointed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := first.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := first.Submit(testSpec(dbPath, matrixPath)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Shutdown = %v, want ErrClosed", err)
	}

	opts.AfterCheckpoint = nil
	second := newTestManager(t, opts)
	final := waitDone(t, second, st.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job state = %s (%s)", final.State, final.Error)
	}
	if final.Resumed < 1 {
		t.Errorf("Resumed = %d, want >= 1", final.Resumed)
	}
}

// TestQueuedJobSurvivesRestart: a job accepted but never started (the single
// worker slot is busy) is durable and runs on the next manager.
func TestQueuedJobSurvivesRestart(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	dir := t.TempDir()
	checkpointed := make(chan struct{})
	var once sync.Once
	opts := Options{
		Dir:              dir,
		WorkerSlots:      1,
		MaxWorkersPerJob: 1,
		OpenDB:           throttledOpener(time.Millisecond),
		AfterCheckpoint: func(id string, phase int) {
			once.Do(func() { close(checkpointed) })
		},
	}
	first, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Submit(testSpec(dbPath, matrixPath)); err != nil {
		t.Fatal(err)
	}
	queued, err := first.Submit(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-checkpointed:
	case <-time.After(30 * time.Second):
		t.Fatal("first job never checkpointed")
	}
	first.Crash()

	data, err := os.ReadFile(filepath.Join(dir, "jobs", queued.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateQueued {
		t.Fatalf("journaled state of the waiting job = %s, want queued", rec.State)
	}

	second := newTestManager(t, Options{Dir: dir})
	final := waitDone(t, second, queued.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
}

func TestFailedJobReportsError(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	m := newTestManager(t, Options{
		OpenDB: func(spec Spec) (seqdb.Scanner, error) {
			return nil, errors.New("store is on fire")
		},
	})
	st, err := m.Submit(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Error == "" {
		t.Error("failed job carries no error detail")
	}
	if c := m.Counters(); c.Failed != 1 {
		t.Errorf("counters = %+v, want 1 failed", c)
	}
}
