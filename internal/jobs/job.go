// Package jobs is the serving layer's job subsystem: a bounded, crash-durable
// queue of mining jobs in front of internal/core, with per-tenant admission
// control, a global worker-slot semaphore for cross-job isolation, per-job
// telemetry, and journal-backed restart — a killed server replays its journal
// and resumes in-flight jobs to bit-identical results via core.Resume.
//
// The package is transport-agnostic: Manager is the engine, Server (server.go)
// the HTTP/JSON face cmd/lspserve mounts. Robustness properties are load-
// bearing, not incidental:
//
//   - every accepted job is journaled crash-atomically before Submit returns,
//     so acceptance is a durable promise;
//   - running jobs checkpoint under core.CheckpointPolicy, so a SIGKILL loses
//     at most one probe scan of work;
//   - admission sheds load (queue bound, per-tenant token bucket and
//     max-active cap) with a Retry-After hint instead of queuing unboundedly;
//   - a job whose Phase 3 deadline expires returns the graceful degraded
//     result (confirmed set + Chernoff intervals) instead of an error.
package jobs

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// State is a job's lifecycle position. Transitions are monotone:
// queued → running → (done | failed | canceled); a restarted server moves
// journaled running jobs back through running via resume.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is a mining job request — the serving analogue of lspmine's flag set.
// Zero values select the same defaults the CLI uses; Normalize fills them in
// so the journaled spec is self-describing and hashes identically across
// restarts.
type Spec struct {
	// Tenant attributes the job for admission control ("" = the anonymous
	// tenant, which is rate-limited as one bucket like any other).
	Tenant string `json:"tenant,omitempty"`
	// DB is the sequence database path (.lsq/.lsq.gz, required).
	DB string `json:"db"`
	// Matrix is the compatibility matrix path (required).
	Matrix string `json:"matrix"`
	// MinMatch is the significance threshold (required, in (0,1]).
	MinMatch float64 `json:"min_match"`
	// MaxLen bounds pattern length (required, >= 1).
	MaxLen int `json:"max_len"`
	// MaxGap bounds runs of eternal symbols (default 0).
	MaxGap int `json:"max_gap,omitempty"`
	// Delta is the Chernoff failure probability (default 1e-4).
	Delta float64 `json:"delta,omitempty"`
	// Sample is the Phase 1 sample size (default 1000).
	Sample int `json:"sample,omitempty"`
	// MaxCandidates caps Phase 2's per-level candidate count (default 50000;
	// -1 = unlimited).
	MaxCandidates int `json:"max_candidates,omitempty"`
	// MemBudget is Phase 3's pattern counters per scan (default 10000).
	MemBudget int `json:"mem_budget,omitempty"`
	// Finalizer is the Phase 3 strategy: collapse (default), levelwise,
	// implicit, or none.
	Finalizer string `json:"finalizer,omitempty"`
	// Engine is the Phase 2 engine: candidates (default) or sweep.
	Engine string `json:"engine,omitempty"`
	// Phase2Engine is the Phase 2 mining strategy: levelwise (default) or
	// growth (depth-first pattern growth over projected samples; identical
	// results, no per-level candidate materialization). Only valid with the
	// candidates engine — the sweep pipeline has its own Phase 2.
	Phase2Engine string `json:"phase2_engine,omitempty"`
	// Workers is the number of worker slots the job wants from the global
	// semaphore (default 1). The grant may be smaller under load — never
	// zero — and never changes the mined result.
	Workers int `json:"workers,omitempty"`
	// Seed drives Phase 1's sampling (default 1). Together with the spec it
	// fully determines the result, which is what makes kill-resume
	// verification ("bit-identical to an uninterrupted run") meaningful.
	Seed int64 `json:"seed,omitempty"`
	// Retries enables a jittered retrying scanner over the database (0 =
	// none): transient scan failures are re-run with full-jitter capped
	// backoff instead of failing the job.
	Retries int `json:"retries,omitempty"`
	// RetryBaseMillis overrides the retry backoff's base delay in
	// milliseconds (0 = the manager's default, ultimately 10ms). Only
	// meaningful with Retries > 0.
	RetryBaseMillis int64 `json:"retry_base_ms,omitempty"`
	// RetryCapMillis overrides the retry backoff's delay cap in milliseconds
	// (0 = the manager's default, ultimately 1000ms).
	RetryCapMillis int64 `json:"retry_cap_ms,omitempty"`
	// Phase3TimeoutMillis bounds Phase 3's wall time (0 = the manager's
	// default). On expiry the job completes degraded — confirmed set plus
	// Chernoff intervals for the unresolved patterns — rather than failing.
	Phase3TimeoutMillis int64 `json:"phase3_timeout_ms,omitempty"`
	// Phase3Shards scatters each Phase 3 probe scan over that many database
	// shards (0 = the manager's default, 1 = single-pass probes). A tuning
	// knob: the mined result is identical for every shard count.
	Phase3Shards int `json:"phase3_shards,omitempty"`
}

// Normalize fills defaulted fields in place (mirroring lspmine's defaults)
// and validates the result. The manager journals the normalized spec, so a
// record read back after a restart reproduces the exact same core.Config.
func (s *Spec) Normalize() error {
	if s.DB == "" {
		return fmt.Errorf("jobs: spec.db is required")
	}
	if s.Matrix == "" {
		return fmt.Errorf("jobs: spec.matrix is required")
	}
	if s.MinMatch <= 0 || s.MinMatch > 1 {
		return fmt.Errorf("jobs: spec.min_match %v outside (0,1]", s.MinMatch)
	}
	if s.MaxLen < 1 {
		return fmt.Errorf("jobs: spec.max_len %d < 1", s.MaxLen)
	}
	if s.MaxGap < 0 {
		return fmt.Errorf("jobs: negative spec.max_gap")
	}
	if s.Delta == 0 {
		s.Delta = 1e-4
	}
	if s.Delta <= 0 || s.Delta >= 1 {
		return fmt.Errorf("jobs: spec.delta %v outside (0,1)", s.Delta)
	}
	if s.Sample == 0 {
		s.Sample = 1000
	}
	if s.Sample < 1 {
		return fmt.Errorf("jobs: spec.sample %d < 1", s.Sample)
	}
	switch {
	case s.MaxCandidates == 0:
		s.MaxCandidates = 50000
	case s.MaxCandidates < 0:
		s.MaxCandidates = 0 // explicit "unlimited"
	}
	if s.MemBudget == 0 {
		s.MemBudget = 10000
	}
	if s.MemBudget < 1 {
		return fmt.Errorf("jobs: spec.mem_budget %d < 1", s.MemBudget)
	}
	if s.Finalizer == "" {
		s.Finalizer = "collapse"
	}
	if _, err := parseFinalizer(s.Finalizer); err != nil {
		return err
	}
	switch s.Engine {
	case "":
		s.Engine = "candidates"
	case "candidates", "sweep":
	default:
		return fmt.Errorf("jobs: unknown engine %q (want candidates or sweep)", s.Engine)
	}
	switch s.Phase2Engine {
	case "":
		s.Phase2Engine = "levelwise"
	case "levelwise":
	case "growth":
		if s.Engine == "sweep" {
			return fmt.Errorf("jobs: phase2_engine growth requires the candidates engine")
		}
	default:
		return fmt.Errorf("jobs: unknown phase2_engine %q (want levelwise or growth)", s.Phase2Engine)
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Workers < 1 {
		return fmt.Errorf("jobs: spec.workers %d < 1", s.Workers)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Retries < 0 {
		return fmt.Errorf("jobs: negative spec.retries")
	}
	if s.RetryBaseMillis < 0 {
		return fmt.Errorf("jobs: negative spec.retry_base_ms")
	}
	if s.RetryCapMillis < 0 {
		return fmt.Errorf("jobs: negative spec.retry_cap_ms")
	}
	if s.RetryBaseMillis > 0 && s.RetryCapMillis > 0 && s.RetryCapMillis < s.RetryBaseMillis {
		return fmt.Errorf("jobs: spec.retry_cap_ms %d below spec.retry_base_ms %d", s.RetryCapMillis, s.RetryBaseMillis)
	}
	if s.Phase3TimeoutMillis < 0 {
		return fmt.Errorf("jobs: negative spec.phase3_timeout_ms")
	}
	if s.Phase3Shards < 0 {
		return fmt.Errorf("jobs: negative spec.phase3_shards")
	}
	return nil
}

func parseFinalizer(name string) (core.Finalizer, error) {
	switch name {
	case "collapse":
		return core.BorderCollapsing, nil
	case "levelwise":
		return core.LevelWise, nil
	case "implicit":
		return core.BorderCollapsingImplicit, nil
	case "none":
		return core.None, nil
	default:
		return 0, fmt.Errorf("jobs: unknown finalizer %q (want collapse, levelwise, implicit or none)", name)
	}
}

// record is the journaled form of one job: its normalized spec plus the
// durable lifecycle facts. Everything needed to resume, re-run, or report
// the job after a crash lives here or in the files the record points at
// (checkpoint, result).
type record struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// State is the last durably recorded state. A crash can leave it one
	// transition behind reality (e.g. "running" for a job that finished a
	// microsecond before the kill); replay re-runs the job from its
	// checkpoint, which converges to the identical result.
	State State `json:"state"`
	// Degraded marks a done job that hit its Phase 3 deadline.
	Degraded bool `json:"degraded,omitempty"`
	// Error holds the failure or cancellation detail for terminal states.
	Error string `json:"error,omitempty"`
	// Resumed counts journal replays that re-ran this job (0 = never
	// interrupted) — an honest marker that the result came through the
	// crash path.
	Resumed int `json:"resumed,omitempty"`
	// Timestamps in Unix milliseconds (0 = not yet).
	SubmittedMs int64 `json:"submitted_ms"`
	StartedMs   int64 `json:"started_ms,omitempty"`
	FinishedMs  int64 `json:"finished_ms,omitempty"`
}

// Status is the externally visible view of a job: the journaled facts plus
// live scheduling and telemetry detail.
type Status struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	State    State  `json:"state"`
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
	// QueuePos is the 1-based position among queued jobs (0 otherwise).
	QueuePos int `json:"queue_pos,omitempty"`
	// Workers is the worker-slot grant while running (0 otherwise).
	Workers int `json:"workers,omitempty"`
	// Resumed counts crash-replays this job went through.
	Resumed     int   `json:"resumed,omitempty"`
	SubmittedMs int64 `json:"submitted_ms"`
	StartedMs   int64 `json:"started_ms,omitempty"`
	FinishedMs  int64 `json:"finished_ms,omitempty"`
	// Spec echoes the normalized spec the job runs with.
	Spec Spec `json:"spec"`
	// Telemetry is the job's live (running) or final (terminal) metrics
	// snapshot; nil before the job first starts.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// Result is the deterministic result document of a completed job. It
// deliberately excludes wall-clock fields (timings, telemetry) and
// scheduling facts (resume counts): given a spec and database, the document
// is a pure function of the mining algorithm, so "restart recovered the job"
// is checkable as byte equality against an uninterrupted run.
type Result struct {
	Schema     string  `json:"schema"`
	MinMatch   float64 `json:"min_match"`
	Sequences  int     `json:"sequences"`
	SampleSize int     `json:"sample_size"`
	Scans      int     `json:"scans"`
	Degraded   bool    `json:"degraded,omitempty"`
	// Frequent lists every frequent pattern (border members flagged),
	// sorted as core.Report sorts them.
	Frequent []core.PatternReport `json:"frequent"`
	// Unresolved lists the patterns a degraded run left ambiguous.
	Unresolved []core.UnresolvedReport `json:"unresolved,omitempty"`
}

// ResultSchema identifies the result document format.
const ResultSchema = "lspserve-result/v1"

// nowMs is the timestamp convention used throughout the journal.
func nowMs(now func() time.Time) int64 { return now().UnixMilli() }
