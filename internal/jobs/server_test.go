package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/testutil"
)

func startTestServer(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m, srv
}

func TestServerSubmitPollResult(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	reg := telemetry.NewRegistry()
	m, srv := startTestServer(t, Options{Registry: reg})

	body, err := json.Marshal(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" {
		t.Fatal("no job ID in submit response")
	}
	// The journaled spec comes back normalized.
	if st.Spec.Delta != 1e-2 || st.Spec.Finalizer != "collapse" || st.Spec.Engine != "candidates" {
		t.Errorf("echoed spec not normalized: %+v", st.Spec)
	}

	if _, err := m.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var final Status
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Schema != ResultSchema || len(res.Frequent) == 0 {
		t.Errorf("result = schema %q, %d frequent", res.Schema, len(res.Frequent))
	}

	// List includes the job.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}

	// Metrics include the counter lines.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		"lspserve_jobs_accepted_total 1",
		`lspserve_jobs_finished_total{state="done"} 1`,
		"lspserve_worker_slots ",
		"lspserve_scans_total ",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
}

// TestServerRejectsUnknownPhase2Engine pins the machine-readable 400: an
// unknown phase2_engine name must fail the submit with a JSON error body,
// not enqueue a job.
func TestServerRejectsUnknownPhase2Engine(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 10, 0.2)
	m, srv := startTestServer(t, Options{})

	spec := testSpec(dbPath, matrixPath)
	spec.Phase2Engine = "prefixspan"
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body does not parse: %v", err)
	}
	if !strings.Contains(eb.Error, "phase2_engine") {
		t.Errorf("error %q does not name phase2_engine", eb.Error)
	}
	if c := m.Counters(); c.Accepted != 0 {
		t.Errorf("rejected spec counted as accepted: %+v", c)
	}
}

func TestServerEventsStream(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	_, srv := startTestServer(t, Options{
		OpenDB: throttledOpener(200 * time.Microsecond),
	})
	body, err := json.Marshal(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var last Status
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line %d does not parse: %v", lines, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 1 {
		t.Fatal("stream delivered no snapshots")
	}
	if !last.State.Terminal() {
		t.Errorf("stream ended at state %s, want a terminal snapshot", last.State)
	}
	if last.State != StateDone {
		t.Errorf("final state = %s (%s)", last.State, last.Error)
	}
}

func TestServerHealthzDraining(t *testing.T) {
	m, srv := startTestServer(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"db":"x","matrix":"y","min_match":0.5,"max_len":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}

func TestServerCancelEndpoint(t *testing.T) {
	dbPath, matrixPath := testWorld(t, testutil.Seed(t), 40, 0.2)
	_, srv := startTestServer(t, Options{
		OpenDB: throttledOpener(time.Millisecond),
	})
	body, err := json.Marshal(testSpec(dbPath, matrixPath))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur Status
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State.Terminal() {
			if cur.State != StateCanceled {
				t.Fatalf("state = %s, want canceled", cur.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never settled after cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
