package jobs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// AppendLog is the server's ingest side of a streaming deployment: it owns
// the write handle of one append-only sequence log (.lsa) and serializes
// client appends into it. Followers — lspmine -follow, streaming jobs —
// tail the same file read-only and pick appends up on their next advance,
// so the server never coordinates with its readers; the log file is the
// only contract.
type AppendLog struct {
	DB *seqdb.AppendDB
	// Window, when > 0, expires all but the newest N live sequences after
	// each accepted append (the head moves through the log's sidecar; the
	// data file is never rewritten).
	Window int
	// Sync fsyncs after each accepted append: durable across power loss at
	// the price of one fsync per request.
	Sync bool

	mu       sync.Mutex
	appended atomic.Int64
}

// appendRequest is the POST /v1/append body. ExpectTotal makes retries safe:
// a client that reads the log's total, sends it along, and retries on
// network failure can never double-append — a stale total is refused with
// 409 and the current total, and the client resubmits only what is missing.
type appendRequest struct {
	Sequences   [][]pattern.Symbol `json:"sequences"`
	ExpectTotal *int               `json:"expect_total,omitempty"`
}

// appendResponse reports where the batch landed.
type appendResponse struct {
	// FirstID is the absolute id of the first appended sequence.
	FirstID  int `json:"first_id"`
	Appended int `json:"appended"`
	// Total is the absolute append count; Live excludes expired sequences.
	Total int `json:"total"`
	Live  int `json:"live"`
}

// handleAppend serializes one client batch into the log. The whole batch is
// appended under the log's lock, so concurrent clients interleave at batch
// granularity and each response describes a contiguous id range.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	al := s.AppendLog
	var req appendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid append request: %v", err)
		return
	}
	if len(req.Sequences) == 0 {
		writeError(w, http.StatusBadRequest, "append request carries no sequences")
		return
	}
	for i, seq := range req.Sequences {
		if len(seq) == 0 {
			writeError(w, http.StatusBadRequest, "sequence %d is empty", i)
			return
		}
		for _, sym := range seq {
			if sym < 0 {
				writeError(w, http.StatusBadRequest, "sequence %d carries a negative symbol", i)
				return
			}
		}
	}

	al.mu.Lock()
	defer al.mu.Unlock()
	if req.ExpectTotal != nil && *req.ExpectTotal != al.DB.Total() {
		writeJSON(w, http.StatusConflict, struct {
			Error string `json:"error"`
			Total int    `json:"total"`
		}{"expected total does not match the log", al.DB.Total()})
		return
	}
	first := al.DB.Total()
	for _, seq := range req.Sequences {
		if _, err := al.DB.Append(seq); err != nil {
			writeError(w, http.StatusInternalServerError, "append failed: %v", err)
			return
		}
	}
	if al.Window > 0 {
		if total := al.DB.Total(); total-al.DB.Start() > al.Window {
			if err := al.DB.ExpireBefore(total - al.Window); err != nil {
				writeError(w, http.StatusInternalServerError, "window expiry failed: %v", err)
				return
			}
		}
	}
	if al.Sync {
		if err := al.DB.Sync(); err != nil {
			writeError(w, http.StatusInternalServerError, "sync failed: %v", err)
			return
		}
	}
	al.appended.Add(int64(len(req.Sequences)))
	writeJSON(w, http.StatusOK, appendResponse{
		FirstID:  first,
		Appended: len(req.Sequences),
		Total:    al.DB.Total(),
		Live:     al.DB.Len(),
	})
}
