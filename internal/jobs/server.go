package jobs

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// TenantHeader is the authenticated-tenant header the deployment's front
// door (or the bearer-token holder) sets. When present it is authoritative:
// a spec naming a different tenant is rejected, and a spec naming none
// adopts it — the spec's tenant field is never trusted over it.
const TenantHeader = "X-LSP-Tenant"

// Authentication rejection reasons (machine-readable, kebab-case like the
// admission reasons).
const (
	// ReasonUnauthorized: missing or wrong bearer token (401).
	ReasonUnauthorized = "unauthorized"
	// ReasonTenantMismatch: the spec's tenant contradicts TenantHeader (403).
	ReasonTenantMismatch = "tenant-mismatch"
)

// Server is the HTTP/JSON face of a Manager. Mount via Handler:
//
//	POST   /v1/jobs             submit a Spec        → 202 Status
//	GET    /v1/jobs             list jobs            → 200 []Status
//	GET    /v1/jobs/{id}        job status           → 200 Status
//	GET    /v1/jobs/{id}/result result document      → 200 Result
//	GET    /v1/jobs/{id}/events NDJSON status stream → 200 Status per line
//	DELETE /v1/jobs/{id}        cancel               → 200 Status
//	POST   /v1/append           append sequences     → 200 (with AppendLog)
//	GET    /healthz             liveness             → 200 / 503 draining
//	GET    /metrics             Prometheus text
//
// Shed submissions (queue full, tenant over rate or concurrency) return
// 429 with a Retry-After header; malformed requests return 400 with a JSON
// error body; unknown jobs 404. The server itself holds no state — every
// durable fact lives in the Manager's journal — so the handler can be
// rebuilt freely around a replayed manager.
type Server struct {
	Manager *Manager
	// StreamInterval paces /events snapshots (default 200ms).
	StreamInterval time.Duration
	// AuthToken, when non-empty, requires "Authorization: Bearer <token>" on
	// every /v1/* route (compared in constant time); /healthz stays open for
	// unauthenticated liveness probes and /metrics for scrapers.
	AuthToken string
	// AppendLog, when non-nil, serves POST /v1/append: clients feed the
	// server's append-only sequence log, which streaming followers tail.
	AppendLog *AppendLog
}

// NewServer wraps a manager with the default streaming cadence.
func NewServer(m *Manager) *Server { return &Server{Manager: m} }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.auth(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.auth(s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.auth(s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.auth(s.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.auth(s.handleEvents))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.auth(s.handleCancel))
	if s.AppendLog != nil {
		mux.HandleFunc("POST /v1/append", s.auth(s.handleAppend))
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// auth gates a /v1 handler behind the bearer token when one is configured.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.AuthToken != "" {
			want := "Bearer " + s.AuthToken
			got := r.Header.Get("Authorization")
			if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
				writeJSON(w, http.StatusUnauthorized, errorBody{
					Error:  "missing or invalid bearer token",
					Reason: ReasonUnauthorized,
				})
				return
			}
		}
		h(w, r)
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// Reason carries the machine-readable rejection class: an admission
	// reason on 429, an authentication reason on 401/403.
	Reason string `json:"reason,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header for JSON-only clients.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	// Unknown fields are rejected: a typoed "min_mach" must fail loudly, not
	// silently mine at the default threshold.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if hdr := r.Header.Get(TenantHeader); hdr != "" {
		switch spec.Tenant {
		case "", hdr:
			spec.Tenant = hdr
		default:
			writeJSON(w, http.StatusForbidden, errorBody{
				Error:  fmt.Sprintf("spec tenant %q does not match authenticated tenant %q", spec.Tenant, hdr),
				Reason: ReasonTenantMismatch,
			})
			return
		}
	}
	st, err := s.Manager.Submit(spec)
	if err != nil {
		var adm *AdmissionError
		switch {
		case errors.As(err, &adm):
			sec := retryAfterSeconds(adm.RetryAfter)
			w.Header().Set("Retry-After", strconv.Itoa(sec))
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:             adm.Error(),
				Reason:            adm.Reason,
				RetryAfterSeconds: sec,
			})
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Manager.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Manager.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	doc, err := s.Manager.Result(r.PathValue("id"))
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(doc)
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrNotDone):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleEvents streams the job's status as NDJSON — one Status snapshot per
// line at StreamInterval, plus a final line at the terminal transition —
// so a client can watch scan counts and checkpoint writes advance without
// polling. The stream ends when the job settles or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Manager.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(st Status) bool {
		if err := enc.Encode(st); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(st) {
		return
	}
	interval := s.StreamInterval
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for !st.State.Terminal() {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
		st, err = s.Manager.Status(id)
		if err != nil || !emit(st) {
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Manager.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Manager.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleMetrics renders the manager counters plus the live per-job telemetry
// aggregate in Prometheus text exposition format (stdlib-only; no client
// library in this repo).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.Manager.Counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP lspserve_jobs_accepted_total Jobs accepted into the queue.\n")
	p("# TYPE lspserve_jobs_accepted_total counter\n")
	p("lspserve_jobs_accepted_total %d\n", c.Accepted)
	p("# HELP lspserve_jobs_rejected_total Submissions shed by admission control.\n")
	p("# TYPE lspserve_jobs_rejected_total counter\n")
	p("lspserve_jobs_rejected_total{reason=%q} %d\n", ReasonQueueFull, c.RejectedQueueFull)
	p("lspserve_jobs_rejected_total{reason=%q} %d\n", ReasonRateLimited, c.RejectedRateLimited)
	p("lspserve_jobs_rejected_total{reason=%q} %d\n", ReasonTenantBusy, c.RejectedTenantBusy)
	p("# HELP lspserve_jobs_finished_total Jobs settled, by terminal state.\n")
	p("# TYPE lspserve_jobs_finished_total counter\n")
	p("lspserve_jobs_finished_total{state=\"done\"} %d\n", c.Completed)
	p("lspserve_jobs_finished_total{state=\"failed\"} %d\n", c.Failed)
	p("lspserve_jobs_finished_total{state=\"canceled\"} %d\n", c.Canceled)
	p("# HELP lspserve_jobs_degraded_total Done jobs that hit their Phase 3 deadline.\n")
	p("# TYPE lspserve_jobs_degraded_total counter\n")
	p("lspserve_jobs_degraded_total %d\n", c.Degraded)
	p("# HELP lspserve_jobs_replayed_total Jobs resumed from the journal after a restart.\n")
	p("# TYPE lspserve_jobs_replayed_total counter\n")
	p("lspserve_jobs_replayed_total %d\n", c.Replayed)
	p("# HELP lspserve_journal_compacted_jobs_total Terminal job records dropped by startup compaction.\n")
	p("# TYPE lspserve_journal_compacted_jobs_total counter\n")
	p("lspserve_journal_compacted_jobs_total %d\n", c.CompactedJobs)
	p("# HELP lspserve_journal_compact_bytes Journal on-disk size around startup compaction.\n")
	p("# TYPE lspserve_journal_compact_bytes gauge\n")
	p("lspserve_journal_compact_bytes{when=\"before\"} %d\n", c.CompactBytesBefore)
	p("lspserve_journal_compact_bytes{when=\"after\"} %d\n", c.CompactBytesAfter)
	p("# HELP lspserve_jobs_queued Jobs waiting for a worker slot.\n")
	p("# TYPE lspserve_jobs_queued gauge\n")
	p("lspserve_jobs_queued %d\n", c.Queued)
	p("# HELP lspserve_jobs_running Jobs currently mining.\n")
	p("# TYPE lspserve_jobs_running gauge\n")
	p("lspserve_jobs_running %d\n", c.Running)
	p("# HELP lspserve_worker_slots Global worker-slot semaphore capacity.\n")
	p("# TYPE lspserve_worker_slots gauge\n")
	p("lspserve_worker_slots %d\n", c.WorkerSlots)
	p("# HELP lspserve_worker_slots_in_use Worker slots currently held by jobs.\n")
	p("# TYPE lspserve_worker_slots_in_use gauge\n")
	p("lspserve_worker_slots_in_use %d\n", c.SlotsInUse)
	if al := s.AppendLog; al != nil {
		p("# HELP lspserve_append_sequences_total Sequences accepted by /v1/append.\n")
		p("# TYPE lspserve_append_sequences_total counter\n")
		p("lspserve_append_sequences_total %d\n", al.appended.Load())
		p("# HELP lspserve_append_log_live Live (unexpired) sequences in the append log.\n")
		p("# TYPE lspserve_append_log_live gauge\n")
		p("lspserve_append_log_live %d\n", al.DB.Len())
	}
	if reg := s.Manager.opts.Registry; reg != nil {
		writeTelemetryMetrics(w, reg.Aggregate())
	}
}

func writeTelemetryMetrics(w http.ResponseWriter, agg telemetry.Snapshot) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP lspserve_scans_total Database passes across running jobs.\n")
	p("# TYPE lspserve_scans_total counter\n")
	p("lspserve_scans_total %d\n", agg.TotalScans)
	p("# HELP lspserve_scan_sequences_total Sequences delivered across running jobs.\n")
	p("# TYPE lspserve_scan_sequences_total counter\n")
	p("lspserve_scan_sequences_total %d\n", agg.TotalSequences)
	p("# HELP lspserve_checkpoint_writes_total Checkpoint files written by running jobs.\n")
	p("# TYPE lspserve_checkpoint_writes_total counter\n")
	p("lspserve_checkpoint_writes_total %d\n", agg.CheckpointWrites)
	p("# HELP lspserve_checkpoint_bytes_total Checkpoint bytes written by running jobs.\n")
	p("# TYPE lspserve_checkpoint_bytes_total counter\n")
	p("lspserve_checkpoint_bytes_total %d\n", agg.CheckpointBytes)
}
