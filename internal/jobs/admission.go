package jobs

import (
	"fmt"
	"math"
	"time"
)

// Admission-rejection reasons, surfaced to clients so they can distinguish
// "the server is full" (back off globally) from "you are over your limit"
// (back off yourself).
const (
	ReasonQueueFull   = "queue-full"
	ReasonRateLimited = "rate-limited"
	ReasonTenantBusy  = "tenant-busy"
)

// AdmissionError reports a submission shed by admission control. The HTTP
// layer renders it as 429 Too Many Requests with a Retry-After header; the
// queue never grows past its bound and one tenant's burst never consumes
// another tenant's capacity.
type AdmissionError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfter is the suggested wait before resubmitting.
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("jobs: admission rejected (%s); retry after %v", e.Reason, e.RetryAfter)
}

// tokenBucket is a per-tenant submission rate limiter: capacity burst,
// refilled at rate tokens/second. It is driven by the manager's clock (under
// the manager's lock), so tests can step time deterministically.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// take attempts to consume one token at time now. On refusal it returns the
// wait until a full token will have accumulated.
func (b *tokenBucket) take(now time.Time, rate float64, burst int) (bool, time.Duration) {
	if burst < 1 {
		burst = 1
	}
	if b.last.IsZero() {
		b.tokens = float64(burst)
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(float64(burst), b.tokens+dt*rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header has no sub-second form).
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
