package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/checkpoint"
)

// journal is the crash-durable record store backing a Manager: one JSON
// record per job plus, for running jobs, an LCKP checkpoint and, for done
// jobs, a result document. Every write is crash-atomic
// (checkpoint.AtomicWriteFile), so the journal is consistent at every
// instant — a SIGKILL between any two syscalls leaves each job at its last
// durable state, and replay converges every non-terminal job to the same
// result it would have produced uninterrupted.
//
// Layout under dir:
//
//	jobs/<id>.json        job record (spec + lifecycle state)
//	jobs/<id>.result.json result document of a done job
//	ckpt/<id>.lckp        core checkpoint of a queued-or-running job
type journal struct {
	dir string
}

func openJournal(dir string) (*journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: journal dir is required")
	}
	for _, sub := range []string{"jobs", "ckpt"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("jobs: journal: %w", err)
		}
	}
	return &journal{dir: dir}, nil
}

func (j *journal) recordPath(id string) string {
	return filepath.Join(j.dir, "jobs", id+".json")
}

func (j *journal) resultPath(id string) string {
	return filepath.Join(j.dir, "jobs", id+".result.json")
}

// CheckpointPath is where the job's core checkpoint lives while it runs.
func (j *journal) checkpointPath(id string) string {
	return filepath.Join(j.dir, "ckpt", id+".lckp")
}

// saveRecord persists one job record crash-atomically.
func (j *journal) saveRecord(rec *record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: journal: marshal %s: %w", rec.ID, err)
	}
	if err := checkpoint.AtomicWriteFile(j.recordPath(rec.ID), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobs: journal: %w", err)
	}
	return nil
}

// saveResult persists a done job's result document crash-atomically.
func (j *journal) saveResult(id string, doc []byte) error {
	if err := checkpoint.AtomicWriteFile(j.resultPath(id), doc, 0o644); err != nil {
		return fmt.Errorf("jobs: journal: result %s: %w", id, err)
	}
	return nil
}

// loadResult reads a done job's result document.
func (j *journal) loadResult(id string) ([]byte, error) {
	return os.ReadFile(j.resultPath(id))
}

// removeCheckpoint drops a job's checkpoint (after terminal states, where it
// can only mislead a future replay). Missing files are fine.
func (j *journal) removeCheckpoint(id string) {
	_ = os.Remove(j.checkpointPath(id))
}

// hasCheckpoint reports whether a checkpoint file exists for the job.
func (j *journal) hasCheckpoint(id string) bool {
	_, err := os.Stat(j.checkpointPath(id))
	return err == nil
}

// compactStats reports one startup compaction pass.
type compactStats struct {
	// RemovedJobs is the number of terminal job records dropped.
	RemovedJobs int
	// RemovedFiles counts every file deleted (records, results, checkpoints).
	RemovedFiles int
	// BytesBefore/BytesAfter are the journal's total on-disk size around the
	// pass — the size-before/after metric /metrics exposes.
	BytesBefore, BytesAfter int64
}

// compact drops superseded journal entries at startup so a long-lived
// server's journal stops growing unboundedly: only the newest retain
// terminal jobs (by finish time) keep their record, result document, and
// checkpoint; older terminal jobs lose all three. Queued and running jobs
// are never touched — their records are the replay's input — and neither are
// files belonging to records that failed to parse (a torn record must not
// cascade into deleting its result). Orphaned result/checkpoint files whose
// record is gone entirely are removed too.
func (j *journal) compact(retain int) (compactStats, []error) {
	var st compactStats
	st.BytesBefore = j.diskBytes()
	recs, errs := j.load()
	var terminal []*record
	for _, rec := range recs {
		if rec.State.Terminal() {
			terminal = append(terminal, rec)
		}
	}
	sort.Slice(terminal, func(a, b int) bool {
		if terminal[a].FinishedMs != terminal[b].FinishedMs {
			return terminal[a].FinishedMs > terminal[b].FinishedMs
		}
		return terminal[a].ID > terminal[b].ID
	})
	remove := func(path string) {
		switch err := os.Remove(path); {
		case err == nil:
			st.RemovedFiles++
		case !os.IsNotExist(err):
			errs = append(errs, fmt.Errorf("jobs: compact: %w", err))
		}
	}
	for _, rec := range terminal[min(retain, len(terminal)):] {
		st.RemovedJobs++
		remove(j.recordPath(rec.ID))
		remove(j.resultPath(rec.ID))
		remove(j.checkpointPath(rec.ID))
	}
	// Orphan sweep: result and checkpoint files are subordinate to their
	// record file — if it is gone (however that happened), they are dead
	// weight.
	orphaned := func(id string) bool {
		_, err := os.Stat(j.recordPath(id))
		return os.IsNotExist(err)
	}
	if entries, err := os.ReadDir(filepath.Join(j.dir, "jobs")); err == nil {
		for _, e := range entries {
			id, ok := strings.CutSuffix(e.Name(), ".result.json")
			if ok && orphaned(id) {
				remove(j.resultPath(id))
			}
		}
	}
	if entries, err := os.ReadDir(filepath.Join(j.dir, "ckpt")); err == nil {
		for _, e := range entries {
			id, ok := strings.CutSuffix(e.Name(), ".lckp")
			if ok && orphaned(id) {
				remove(j.checkpointPath(id))
			}
		}
	}
	st.BytesAfter = j.diskBytes()
	return st, errs
}

// diskBytes sums the journal's on-disk file sizes.
func (j *journal) diskBytes() int64 {
	var n int64
	for _, sub := range []string{"jobs", "ckpt"} {
		entries, err := os.ReadDir(filepath.Join(j.dir, sub))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if info, err := e.Info(); err == nil {
				n += info.Size()
			}
		}
	}
	return n
}

// load reads every job record, sorted by submission time then ID — the
// replay order. Records that fail to parse are skipped with their error
// reported (one torn or hand-damaged record must not take down the server;
// crash-atomic writes make this path unreachable for our own crashes, but
// robustness here is cheap).
func (j *journal) load() ([]*record, []error) {
	entries, err := os.ReadDir(filepath.Join(j.dir, "jobs"))
	if err != nil {
		return nil, []error{fmt.Errorf("jobs: journal: %w", err)}
	}
	var recs []*record
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".result.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(j.dir, "jobs", name))
		if err != nil {
			errs = append(errs, fmt.Errorf("jobs: journal: %w", err))
			continue
		}
		rec := new(record)
		if err := json.Unmarshal(data, rec); err != nil {
			errs = append(errs, fmt.Errorf("jobs: journal: %s: %w", name, err))
			continue
		}
		if rec.ID == "" || rec.ID+".json" != name {
			errs = append(errs, fmt.Errorf("jobs: journal: %s: record ID %q does not match filename", name, rec.ID))
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].SubmittedMs != recs[b].SubmittedMs {
			return recs[a].SubmittedMs < recs[b].SubmittedMs
		}
		return recs[a].ID < recs[b].ID
	})
	return recs, errs
}
