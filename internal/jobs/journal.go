package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/checkpoint"
)

// journal is the crash-durable record store backing a Manager: one JSON
// record per job plus, for running jobs, an LCKP checkpoint and, for done
// jobs, a result document. Every write is crash-atomic
// (checkpoint.AtomicWriteFile), so the journal is consistent at every
// instant — a SIGKILL between any two syscalls leaves each job at its last
// durable state, and replay converges every non-terminal job to the same
// result it would have produced uninterrupted.
//
// Layout under dir:
//
//	jobs/<id>.json        job record (spec + lifecycle state)
//	jobs/<id>.result.json result document of a done job
//	ckpt/<id>.lckp        core checkpoint of a queued-or-running job
type journal struct {
	dir string
}

func openJournal(dir string) (*journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: journal dir is required")
	}
	for _, sub := range []string{"jobs", "ckpt"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("jobs: journal: %w", err)
		}
	}
	return &journal{dir: dir}, nil
}

func (j *journal) recordPath(id string) string {
	return filepath.Join(j.dir, "jobs", id+".json")
}

func (j *journal) resultPath(id string) string {
	return filepath.Join(j.dir, "jobs", id+".result.json")
}

// CheckpointPath is where the job's core checkpoint lives while it runs.
func (j *journal) checkpointPath(id string) string {
	return filepath.Join(j.dir, "ckpt", id+".lckp")
}

// saveRecord persists one job record crash-atomically.
func (j *journal) saveRecord(rec *record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: journal: marshal %s: %w", rec.ID, err)
	}
	if err := checkpoint.AtomicWriteFile(j.recordPath(rec.ID), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobs: journal: %w", err)
	}
	return nil
}

// saveResult persists a done job's result document crash-atomically.
func (j *journal) saveResult(id string, doc []byte) error {
	if err := checkpoint.AtomicWriteFile(j.resultPath(id), doc, 0o644); err != nil {
		return fmt.Errorf("jobs: journal: result %s: %w", id, err)
	}
	return nil
}

// loadResult reads a done job's result document.
func (j *journal) loadResult(id string) ([]byte, error) {
	return os.ReadFile(j.resultPath(id))
}

// removeCheckpoint drops a job's checkpoint (after terminal states, where it
// can only mislead a future replay). Missing files are fine.
func (j *journal) removeCheckpoint(id string) {
	_ = os.Remove(j.checkpointPath(id))
}

// hasCheckpoint reports whether a checkpoint file exists for the job.
func (j *journal) hasCheckpoint(id string) bool {
	_, err := os.Stat(j.checkpointPath(id))
	return err == nil
}

// load reads every job record, sorted by submission time then ID — the
// replay order. Records that fail to parse are skipped with their error
// reported (one torn or hand-damaged record must not take down the server;
// crash-atomic writes make this path unreachable for our own crashes, but
// robustness here is cheap).
func (j *journal) load() ([]*record, []error) {
	entries, err := os.ReadDir(filepath.Join(j.dir, "jobs"))
	if err != nil {
		return nil, []error{fmt.Errorf("jobs: journal: %w", err)}
	}
	var recs []*record
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".result.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(j.dir, "jobs", name))
		if err != nil {
			errs = append(errs, fmt.Errorf("jobs: journal: %w", err))
			continue
		}
		rec := new(record)
		if err := json.Unmarshal(data, rec); err != nil {
			errs = append(errs, fmt.Errorf("jobs: journal: %s: %w", name, err))
			continue
		}
		if rec.ID == "" || rec.ID+".json" != name {
			errs = append(errs, fmt.Errorf("jobs: journal: %s: record ID %q does not match filename", name, rec.ID))
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].SubmittedMs != recs[b].SubmittedMs {
			return recs[a].SubmittedMs < recs[b].SubmittedMs
		}
		return recs[a].ID < recs[b].ID
	})
	return recs, errs
}
