package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

func startAppendServer(t *testing.T, window int) (*seqdb.AppendDB, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	adb, err := seqdb.OpenAppend(filepath.Join(dir, "ingest.lsa"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adb.Close() })
	m, err := NewManager(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(m)
	s.AppendLog = &AppendLog{DB: adb, Window: window}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return adb, srv
}

func postAppend(t *testing.T, url string, req appendRequest) (*http.Response, appendResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out appendResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestServerAppend feeds two batches and checks ids, totals, and that the
// sequences landed in the log byte-for-byte.
func TestServerAppend(t *testing.T) {
	adb, srv := startAppendServer(t, 0)
	batches := [][][]pattern.Symbol{
		{{0, 1, 2}, {3, 4}},
		{{5}, {6, 7}, {8}},
	}
	total := 0
	for _, seqs := range batches {
		resp, out := postAppend(t, srv.URL, appendRequest{Sequences: seqs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append: status %d", resp.StatusCode)
		}
		if out.FirstID != total || out.Appended != len(seqs) || out.Total != total+len(seqs) {
			t.Fatalf("append response %+v, want first %d appended %d", out, total, len(seqs))
		}
		total += len(seqs)
	}
	var got [][]pattern.Symbol
	if err := adb.Scan(func(id int, seq []pattern.Symbol) error {
		got = append(got, append([]pattern.Symbol(nil), seq...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var want [][]pattern.Symbol
	for _, b := range batches {
		want = append(want, b...)
	}
	if len(got) != len(want) {
		t.Fatalf("log holds %d sequences, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("sequence %d diverges", i)
			}
		}
	}
}

// TestServerAppendIdempotency: a stale expect_total is refused with 409 and
// the current total, so a retried batch cannot double-append.
func TestServerAppendIdempotency(t *testing.T) {
	_, srv := startAppendServer(t, 0)
	zero := 0
	resp, _ := postAppend(t, srv.URL, appendRequest{Sequences: [][]pattern.Symbol{{1, 2}}, ExpectTotal: &zero})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first append: status %d", resp.StatusCode)
	}
	// The "network failed, client retries the same batch" case.
	resp, _ = postAppend(t, srv.URL, appendRequest{Sequences: [][]pattern.Symbol{{1, 2}}, ExpectTotal: &zero})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("retried append: status %d, want 409", resp.StatusCode)
	}
}

// TestServerAppendWindow: the configured sliding window expires old
// sequences as batches land.
func TestServerAppendWindow(t *testing.T) {
	adb, srv := startAppendServer(t, 3)
	for i := 0; i < 5; i++ {
		resp, _ := postAppend(t, srv.URL, appendRequest{Sequences: [][]pattern.Symbol{{pattern.Symbol(i)}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: status %d", i, resp.StatusCode)
		}
	}
	if adb.Total() != 5 || adb.Len() != 3 || adb.Start() != 2 {
		t.Fatalf("log total %d live %d start %d, want 5/3/2", adb.Total(), adb.Len(), adb.Start())
	}
}

// TestServerAppendRejectsMalformed: empty batches, empty sequences and
// negative symbols are refused before touching the log.
func TestServerAppendRejectsMalformed(t *testing.T) {
	adb, srv := startAppendServer(t, 0)
	for _, req := range []appendRequest{
		{},
		{Sequences: [][]pattern.Symbol{{}}},
		{Sequences: [][]pattern.Symbol{{1, -2}}},
	} {
		resp, _ := postAppend(t, srv.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed append: status %d, want 400", resp.StatusCode)
		}
	}
	if adb.Total() != 0 {
		t.Fatalf("malformed appends reached the log (total %d)", adb.Total())
	}
}
