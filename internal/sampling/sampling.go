// Package sampling implements the random sampling used by Phase 1 of the
// mining algorithm: the simple sequential method of Algorithm 4.1
// (lines 12–16, after Vitter [27]) when the database size N is known, and
// reservoir sampling when it is not. Both produce an exact simple random
// sample of n sequences without replacement.
package sampling

import (
	"fmt"
	"math/rand"

	"repro/internal/pattern"
)

// Sequential draws a simple random sample of n sequences from a stream of
// exactly N sequences: sequence i (0-based) is selected with probability
// (n-j)/(N-i) where j sequences have been chosen so far. Offer must be
// called exactly N times.
type Sequential struct {
	n, total int
	seen     int
	draws    uint64
	rng      *rand.Rand
	samples  [][]pattern.Symbol
}

// NewSequential creates a sampler of n out of total sequences. n is clamped
// to total. rng must be non-nil.
func NewSequential(n, total int, rng *rand.Rand) (*Sequential, error) {
	if total < 0 || n < 0 {
		return nil, fmt.Errorf("sampling: negative size (n=%d, total=%d)", n, total)
	}
	if rng == nil {
		return nil, fmt.Errorf("sampling: nil rng")
	}
	if n > total {
		n = total
	}
	return &Sequential{n: n, total: total, rng: rng, samples: make([][]pattern.Symbol, 0, n)}, nil
}

// Offer presents the next sequence of the stream; the sampler copies it when
// chosen and reports whether it was. Offering more than total sequences
// panics: it indicates a stream/size mismatch that would skew the sample.
func (s *Sequential) Offer(seq []pattern.Symbol) bool {
	if s.seen >= s.total {
		panic("sampling: more sequences offered than declared total")
	}
	remainingNeed := s.n - len(s.samples)
	remainingSeqs := s.total - s.seen
	s.seen++
	if remainingNeed <= 0 {
		return false
	}
	// Choose with probability (n-j)/(N-i).
	take := float64(remainingNeed) >= float64(remainingSeqs)
	if !take {
		s.draws++
		take = s.rng.Float64() < float64(remainingNeed)/float64(remainingSeqs)
	}
	if take {
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		s.samples = append(s.samples, cp)
		return true
	}
	return false
}

// Samples returns the chosen sequences. After all total offers, exactly
// min(n, total) sequences are present.
func (s *Sequential) Samples() [][]pattern.Symbol { return s.samples }

// Draws returns the number of rng draws consumed so far. A checkpointing
// pipeline records it so a resumed run can fast-forward a freshly seeded
// generator to the sampler's exact post-scan state.
func (s *Sequential) Draws() uint64 { return s.draws }

// Reservoir draws a uniform sample of up to n sequences from a stream of
// unknown length (Vitter's Algorithm R).
type Reservoir struct {
	n       int
	seen    int
	rng     *rand.Rand
	samples [][]pattern.Symbol
}

// NewReservoir creates a reservoir of capacity n. rng must be non-nil.
func NewReservoir(n int, rng *rand.Rand) (*Reservoir, error) {
	if n < 0 {
		return nil, fmt.Errorf("sampling: negative capacity %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("sampling: nil rng")
	}
	return &Reservoir{n: n, rng: rng, samples: make([][]pattern.Symbol, 0, n)}, nil
}

// Offer presents the next sequence; the reservoir copies it if retained at
// this point (it may be displaced later).
func (r *Reservoir) Offer(seq []pattern.Symbol) {
	r.seen++
	if r.n == 0 {
		return
	}
	if len(r.samples) < r.n {
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		r.samples = append(r.samples, cp)
		return
	}
	if k := r.rng.Intn(r.seen); k < r.n {
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		r.samples[k] = cp
	}
}

// Samples returns the current reservoir contents.
func (r *Reservoir) Samples() [][]pattern.Symbol { return r.samples }

// Seen returns how many sequences were offered.
func (r *Reservoir) Seen() int { return r.seen }
