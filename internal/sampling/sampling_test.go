package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

func seqOf(v int) []pattern.Symbol { return []pattern.Symbol{pattern.Symbol(v)} }

func TestSequentialExactSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, total int }{
		{0, 10}, {1, 10}, {5, 10}, {10, 10}, {15, 10}, {100, 1000},
	} {
		s, err := NewSequential(tc.n, tc.total, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tc.total; i++ {
			s.Offer(seqOf(i))
		}
		want := tc.n
		if want > tc.total {
			want = tc.total
		}
		if got := len(s.Samples()); got != want {
			t.Errorf("n=%d total=%d: sampled %d, want %d", tc.n, tc.total, got, want)
		}
	}
}

func TestSequentialErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSequential(-1, 10, rng); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewSequential(1, -1, rng); err == nil {
		t.Error("negative total accepted")
	}
	if _, err := NewSequential(1, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestSequentialOverOfferPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, _ := NewSequential(1, 1, rng)
	s.Offer(seqOf(0))
	defer func() {
		if recover() == nil {
			t.Error("no panic on over-offer")
		}
	}()
	s.Offer(seqOf(1))
}

func TestSequentialCopiesData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, _ := NewSequential(1, 1, rng)
	buf := []pattern.Symbol{7}
	if !s.Offer(buf) {
		t.Fatal("n==total must always choose")
	}
	buf[0] = 99
	if s.Samples()[0][0] != 7 {
		t.Error("sample aliases caller's buffer")
	}
}

func TestSequentialUniformity(t *testing.T) {
	// Each of 20 sequences should appear in a 5-sample with prob 1/4; over
	// many trials the empirical inclusion rate must be close.
	const total, n, trials = 20, 5, 4000
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, total)
	for trial := 0; trial < trials; trial++ {
		s, _ := NewSequential(n, total, rng)
		for i := 0; i < total; i++ {
			if s.Offer(seqOf(i)) {
				counts[i]++
			}
		}
	}
	want := float64(trials) * float64(n) / float64(total)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Errorf("sequence %d chosen %d times, want ≈%v", i, c, want)
		}
	}
}

func TestReservoirSizeAndUniformity(t *testing.T) {
	const total, n, trials = 20, 5, 4000
	rng := rand.New(rand.NewSource(43))
	counts := make([]int, total)
	for trial := 0; trial < trials; trial++ {
		r, err := NewReservoir(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < total; i++ {
			r.Offer(seqOf(i))
		}
		if len(r.Samples()) != n {
			t.Fatalf("reservoir holds %d, want %d", len(r.Samples()), n)
		}
		if r.Seen() != total {
			t.Fatalf("Seen=%d", r.Seen())
		}
		for _, s := range r.Samples() {
			counts[s[0]]++
		}
	}
	want := float64(trials) * float64(n) / float64(total)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Errorf("sequence %d retained %d times, want ≈%v", i, c, want)
		}
	}
}

func TestReservoirSmallStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r, _ := NewReservoir(10, rng)
	for i := 0; i < 3; i++ {
		r.Offer(seqOf(i))
	}
	if len(r.Samples()) != 3 {
		t.Errorf("got %d samples", len(r.Samples()))
	}
}

func TestReservoirZeroCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r, _ := NewReservoir(0, rng)
	r.Offer(seqOf(1))
	if len(r.Samples()) != 0 {
		t.Error("zero-capacity reservoir retained data")
	}
}

func TestReservoirErrors(t *testing.T) {
	if _, err := NewReservoir(-1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewReservoir(1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestReservoirCopiesData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, _ := NewReservoir(2, rng)
	buf := []pattern.Symbol{5}
	r.Offer(buf)
	buf[0] = 9
	if r.Samples()[0][0] != 5 {
		t.Error("reservoir aliases caller's buffer")
	}
}
