// Conformance slice for the level-wise Phase 3 finalizer, exercised through
// the full pipeline under both Phase 2 kernels (external test package:
// internal/oracle imports the packages levelwise builds on).
package levelwise_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
)

func TestLevelWiseOracleConformance(t *testing.T) {
	engines := []oracle.Engine{
		oracle.MineEngine(core.LevelWise, core.KernelIncremental, 0),
		oracle.MineEngine(core.LevelWise, core.KernelNaive, 3),
	}
	for _, seed := range oracle.CommittedSeeds[:4] {
		if d := oracle.CheckSeed(seed, engines); d != nil {
			t.Fatalf("level-wise pipeline diverged from the oracle:\n%s", d)
		}
	}
}
