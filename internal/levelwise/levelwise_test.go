package levelwise

import (
	"math/rand"
	"testing"

	"repro/internal/border"
	"repro/internal/pattern"
)

func chain(length int) *pattern.Set {
	s := pattern.NewSet()
	for l := 1; l <= length; l++ {
		p := make(pattern.Pattern, l)
		for i := range p {
			p[i] = pattern.Symbol(i)
		}
		s.Add(p)
	}
	return s
}

type levelOracle struct {
	cutoff int
	calls  int
}

func (o *levelOracle) probe(ps []pattern.Pattern) ([]float64, error) {
	o.calls++
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p.K() <= o.cutoff {
			out[i] = 1
		}
	}
	return out, nil
}

func TestFinalizeMatchesCollapseResult(t *testing.T) {
	for _, cutoff := range []int{0, 1, 3, 5, 8} {
		for budget := 1; budget <= 4; budget++ {
			lw := &levelOracle{cutoff: cutoff}
			bc := &levelOracle{cutoff: cutoff}
			resLW, err := Finalize(border.Config{MinMatch: 0.5, MemBudget: budget, Probe: lw.probe}, pattern.NewSet(), chain(8))
			if err != nil {
				t.Fatal(err)
			}
			resBC, err := border.Collapse(border.Config{MinMatch: 0.5, MemBudget: budget, Probe: bc.probe}, pattern.NewSet(), chain(8))
			if err != nil {
				t.Fatal(err)
			}
			if resLW.Frequent.Len() != resBC.Frequent.Len() {
				t.Fatalf("cutoff=%d budget=%d: level-wise %d frequent, collapse %d",
					cutoff, budget, resLW.Frequent.Len(), resBC.Frequent.Len())
			}
			for _, p := range resBC.Frequent.Patterns() {
				if !resLW.Frequent.Contains(p) {
					t.Errorf("level-wise missing %v", p)
				}
			}
		}
	}
}

func TestBottomUpOrder(t *testing.T) {
	picked := PickBottomUp(chain(5), 3)
	if len(picked) != 3 {
		t.Fatalf("picked %d", len(picked))
	}
	for i, p := range picked {
		if p.K() != i+1 {
			t.Errorf("pick %d at level %d, want %d", i, p.K(), i+1)
		}
	}
}

func TestLevelWiseNeedsMoreScansOnDeepChains(t *testing.T) {
	// The paper's Figure 14(b) contrast: on a long chain with a deep border,
	// bottom-up probing needs a scan per level while collapsing needs O(log).
	const length, cutoff = 32, 31
	lw := &levelOracle{cutoff: cutoff}
	bc := &levelOracle{cutoff: cutoff}
	resLW, err := Finalize(border.Config{MinMatch: 0.5, MemBudget: 1, Probe: lw.probe}, pattern.NewSet(), chain(length))
	if err != nil {
		t.Fatal(err)
	}
	resBC, err := border.Collapse(border.Config{MinMatch: 0.5, MemBudget: 1, Probe: bc.probe}, pattern.NewSet(), chain(length))
	if err != nil {
		t.Fatal(err)
	}
	if resLW.Scans <= resBC.Scans {
		t.Errorf("level-wise %d scans vs collapse %d: expected collapse to win", resLW.Scans, resBC.Scans)
	}
	if resBC.Scans > 7 {
		t.Errorf("collapse used %d scans, want O(log 32)", resBC.Scans)
	}
	if resLW.Scans < length-2 {
		t.Errorf("level-wise used only %d scans on a %d-chain with budget 1", resLW.Scans, length)
	}
}

func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		top := make(pattern.Pattern, 5)
		for i := range top {
			top[i] = pattern.Symbol(rng.Intn(3))
		}
		region := pattern.NewSet(top)
		var rec func(p pattern.Pattern)
		rec = func(p pattern.Pattern) {
			for _, q := range p.ImmediateSubpatterns() {
				if region.Add(q) {
					rec(q)
				}
			}
		}
		rec(top)
		members := region.Patterns()
		truthBorder := pattern.NewSet(members[rng.Intn(len(members))])
		probe := func(ps []pattern.Pattern) ([]float64, error) {
			out := make([]float64, len(ps))
			for i, p := range ps {
				if truthBorder.CoveredBy(p) {
					out[i] = 1
				}
			}
			return out, nil
		}
		budget := 1 + rng.Intn(4)
		res, err := Finalize(border.Config{MinMatch: 0.5, MemBudget: budget, Probe: probe}, pattern.NewSet(), region)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range members {
			want := truthBorder.CoveredBy(p)
			if got := res.Frequent.Contains(p); got != want {
				t.Fatalf("trial %d: %v frequent=%v want %v", trial, p, got, want)
			}
		}
	}
}
