// Package levelwise implements the sampling-based level-wise finalizer used
// as a baseline in the paper's §5.6 (after Toivonen [25]): like border
// collapsing it probes the ambiguous region against the full database under
// a memory budget, but it visits the region strictly bottom-up, pushing the
// border of frequent patterns forward one lattice level at a time. On long
// patterns this needs many more scans than the halfway-layer schedule, which
// is exactly the contrast Figure 14 reports.
package levelwise

import (
	"sort"

	"repro/internal/border"
	"repro/internal/pattern"
)

// Finalize resolves the ambiguous region bottom-up. The result is exactly
// the same frequent set as border.Collapse — only the scan count differs.
// Cancellation (cfg.Ctx) and probe retry semantics are inherited from
// border.Finalize: the loop checks the context between probe scans, and a
// retrying Probe re-runs failed passes transparently.
func Finalize(cfg border.Config, sampleFrequent, ambiguous *pattern.Set) (*border.Result, error) {
	return border.Finalize(cfg, sampleFrequent, ambiguous, PickBottomUp)
}

// PickBottomUp selects up to budget pending patterns from the lowest lattice
// levels first — the classic level-wise probe order.
func PickBottomUp(pending *pattern.Set, budget int) []pattern.Pattern {
	byLevel := make(map[int][]pattern.Pattern)
	var levels []int
	for _, p := range pending.Patterns() {
		k := p.K()
		if _, ok := byLevel[k]; !ok {
			levels = append(levels, k)
		}
		byLevel[k] = append(byLevel[k], p)
	}
	sort.Ints(levels)
	var out []pattern.Pattern
	for _, level := range levels {
		for _, p := range byLevel[level] {
			if len(out) >= budget {
				return out
			}
			out = append(out, p)
		}
	}
	return out
}
